package bipartite

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/intset"
)

// Graph is a bipartite graph G = (V1, V2, A). It wraps graph.Graph with a
// side assignment; edges may only join V1 to V2. Create with New.
type Graph struct {
	g    *graph.Graph
	side []graph.Side
}

// New returns an empty bipartite graph.
func New() *Graph {
	return &Graph{g: graph.New()}
}

// AddV1 adds a node to V1 and returns its id.
func (b *Graph) AddV1(label string) int {
	id := b.g.AddNode(label)
	b.side = append(b.side, graph.Side1)
	return id
}

// AddV2 adds a node to V2 and returns its id.
func (b *Graph) AddV2(label string) int {
	id := b.g.AddNode(label)
	b.side = append(b.side, graph.Side2)
	return id
}

// AddEdge adds the arc {u, v}. It panics if u and v are on the same side.
func (b *Graph) AddEdge(u, v int) {
	if b.side[u] == b.side[v] {
		panic(fmt.Sprintf("bipartite: edge %s-%s inside one side",
			b.g.Label(u), b.g.Label(v)))
	}
	b.g.AddEdge(u, v)
}

// AddEdgeLabels adds the arc between existing nodes named a and b.
func (b *Graph) AddEdgeLabels(a, c string) {
	b.AddEdge(b.g.MustID(a), b.g.MustID(c))
}

// G returns the underlying graph (shared, not a copy): use it for
// traversal, connectivity and Steiner primitives.
func (b *Graph) G() *graph.Graph { return b.g }

// N returns the number of nodes; M the number of arcs.
func (b *Graph) N() int { return b.g.N() }

// M returns the number of arcs.
func (b *Graph) M() int { return b.g.M() }

// Side returns which side node v is on.
func (b *Graph) Side(v int) graph.Side { return b.side[v] }

// Sides returns the side of every node, indexed by id. The slice is shared
// and must not be modified.
func (b *Graph) Sides() []graph.Side { return b.side }

// V1 returns the ids of the V1 nodes in increasing order.
func (b *Graph) V1() []int { return b.sideNodes(graph.Side1) }

// V2 returns the ids of the V2 nodes in increasing order.
func (b *Graph) V2() []int { return b.sideNodes(graph.Side2) }

func (b *Graph) sideNodes(s graph.Side) []int {
	var out []int
	for v, sv := range b.side {
		if sv == s {
			out = append(out, v)
		}
	}
	return out
}

// Swap returns the same graph with the two sides exchanged (V1 ↔ V2). The
// underlying graph is shared; only the side assignment is copied.
func (b *Graph) Swap() *Graph {
	side := make([]graph.Side, len(b.side))
	for v, s := range b.side {
		if s == graph.Side1 {
			side[v] = graph.Side2
		} else {
			side[v] = graph.Side1
		}
	}
	return &Graph{g: b.g, side: side}
}

// Clone returns an independent copy.
func (b *Graph) Clone() *Graph {
	return &Graph{g: b.g.Clone(), side: append([]graph.Side(nil), b.side...)}
}

// Induced returns the subgraph induced by keep (sides preserved) together
// with the old-to-new id mapping.
func (b *Graph) Induced(keep []int) (*Graph, map[int]int) {
	sub, old2new := b.g.Induced(keep)
	side := make([]graph.Side, sub.N())
	for old, nw := range old2new {
		side[nw] = b.side[old]
	}
	return &Graph{g: sub, side: side}, old2new
}

// FromGraph wraps an existing graph with an explicit side assignment,
// validating that every edge crosses sides.
func FromGraph(g *graph.Graph, side []graph.Side) (*Graph, error) {
	if len(side) != g.N() {
		return nil, fmt.Errorf("bipartite: side assignment has %d entries for %d nodes", len(side), g.N())
	}
	for _, e := range g.Edges() {
		if side[e.U] == side[e.V] {
			return nil, fmt.Errorf("bipartite: edge %s-%s inside one side",
				g.Label(e.U), g.Label(e.V))
		}
	}
	return &Graph{g: g, side: append([]graph.Side(nil), side...)}, nil
}

// Detect 2-colours an arbitrary graph into a bipartite.Graph. The colouring
// puts the smallest node of each component on side 1, so the result is
// deterministic but one of the two symmetric assignments per component.
func Detect(g *graph.Graph) (*Graph, error) {
	side, ok := g.Bipartition()
	if !ok {
		return nil, fmt.Errorf("bipartite: graph contains an odd cycle")
	}
	return &Graph{g: g, side: side}, nil
}

// Correspondence links a bipartite graph with one of its Definition 2
// hypergraphs: EdgeToV2[i] is the V2 node whose neighbourhood became
// hypergraph edge i, and NodeToV1 maps hypergraph node ids back to graph
// node ids (the identity mapping is not guaranteed because hypergraph
// nodes are allocated in V1 order).
type Correspondence struct {
	H        *hypergraph.Hypergraph
	EdgeToV2 []int
	NodeToV1 []int
	V1ToNode map[int]int
}

// HypergraphV1 builds H¹G (Definition 2): nodes correspond to V1, and for
// every V2 node with at least one neighbour there is an edge holding its
// V1-neighbourhood. V2 nodes of degree zero contribute no edge (edges must
// be nonempty, Definition 1) — the correspondence is exact on graphs
// without isolated V2 nodes.
func (b *Graph) HypergraphV1() Correspondence {
	h := hypergraph.New()
	v1ToNode := map[int]int{}
	var nodeToV1 []int
	for _, v := range b.V1() {
		v1ToNode[v] = h.AddNode(b.g.Label(v))
		nodeToV1 = append(nodeToV1, v)
	}
	var edgeToV2 []int
	for _, w := range b.V2() {
		nbr := b.g.Neighbors(w)
		if nbr.Empty() {
			continue
		}
		nodes := make([]int, nbr.Len())
		for i, v := range nbr {
			nodes[i] = v1ToNode[v]
		}
		h.AddEdge(b.g.Label(w), nodes...)
		edgeToV2 = append(edgeToV2, w)
	}
	return Correspondence{H: h, EdgeToV2: edgeToV2, NodeToV1: nodeToV1, V1ToNode: v1ToNode}
}

// HypergraphV2 builds H²G symmetrically: nodes correspond to V2, edges to
// V1 neighbourhoods.
func (b *Graph) HypergraphV2() Correspondence {
	return b.Swap().HypergraphV1()
}

// Incidence links a hypergraph with its incidence bipartite graph.
type Incidence struct {
	B      *Graph
	NodeID []int // hypergraph node -> graph V1 node
	EdgeID []int // hypergraph edge -> graph V2 node
}

// FromHypergraph builds the bipartite incidence graph of h: V1 has one node
// per hypergraph node, V2 one node per hypergraph edge, with an arc for
// each membership. This inverts HypergraphV1: for a graph G with no
// isolated V2 nodes, FromHypergraph(H¹G) is isomorphic to G.
func FromHypergraph(h *hypergraph.Hypergraph) Incidence {
	b := New()
	nodeID := make([]int, h.N())
	for v := 0; v < h.N(); v++ {
		nodeID[v] = b.AddV1(h.NodeLabel(v))
	}
	edgeID := make([]int, h.M())
	seen := map[string]bool{}
	for v := 0; v < h.N(); v++ {
		seen[h.NodeLabel(v)] = true
	}
	for i := 0; i < h.M(); i++ {
		name := h.EdgeName(i)
		if name == "" {
			name = fmt.Sprintf("e%d", i)
		}
		for seen[name] {
			name = fmt.Sprintf("%s#%d", name, i)
		}
		seen[name] = true
		edgeID[i] = b.AddV2(name)
		for _, v := range h.Edge(i) {
			b.AddEdge(nodeID[v], edgeID[i])
		}
	}
	return Incidence{B: b, NodeID: nodeID, EdgeID: edgeID}
}

// Neighborhood returns the V1-neighbourhood of a V2 node (or vice versa) as
// a set.
func (b *Graph) Neighborhood(v int) intset.Set {
	return b.g.Neighbors(v)
}
