package bipartite_test

import (
	"math/rand"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestFrozenMirrorsBipartite(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		b := gen.RandomBipartite(r, 3+r.Intn(12), 3+r.Intn(12), 0.3)
		f := b.Freeze()
		if f.N() != b.N() || f.M() != b.M() {
			t.Fatalf("size mismatch")
		}
		for v := 0; v < b.N(); v++ {
			if f.Side(v) != b.Side(v) {
				t.Fatalf("side mismatch at %d", v)
			}
		}
		v1, v2 := b.V1(), b.V2()
		if len(f.V1()) != len(v1) || len(f.V2()) != len(v2) {
			t.Fatalf("partition size mismatch")
		}
		for i, v := range f.V1() {
			if v != v1[i] {
				t.Fatalf("V1[%d] mismatch", i)
			}
		}
		for i, v := range f.V2() {
			if v != v2[i] {
				t.Fatalf("V2[%d] mismatch", i)
			}
		}
		th := f.Thaw()
		if th.N() != b.N() || th.M() != b.M() {
			t.Fatalf("Thaw size mismatch")
		}
	}
}

func TestFrozenHypergraphsMatchMutable(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		b := gen.RandomBipartite(r, 2+r.Intn(10), 2+r.Intn(10), 0.35)
		f := b.Freeze()

		for _, tc := range []struct {
			name            string
			mutable, frozen bipartite.Correspondence
		}{
			{"H1", b.HypergraphV1(), f.HypergraphV1()},
			{"H2", b.HypergraphV2(), f.HypergraphV2()},
		} {
			if !tc.mutable.H.Equal(tc.frozen.H) {
				t.Fatalf("%s: frozen hypergraph differs:\n%v\n%v", tc.name, tc.mutable.H, tc.frozen.H)
			}
			if len(tc.mutable.EdgeToV2) != len(tc.frozen.EdgeToV2) {
				t.Fatalf("%s: EdgeToV2 length mismatch", tc.name)
			}
			for i := range tc.mutable.EdgeToV2 {
				if tc.mutable.EdgeToV2[i] != tc.frozen.EdgeToV2[i] {
					t.Fatalf("%s: EdgeToV2[%d] mismatch", tc.name, i)
				}
			}
			for i := range tc.mutable.NodeToV1 {
				if tc.mutable.NodeToV1[i] != tc.frozen.NodeToV1[i] {
					t.Fatalf("%s: NodeToV1[%d] mismatch", tc.name, i)
				}
			}
		}
	}
}

func TestFrozenHypergraphAliveMatchesInduced(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		b := gen.RandomConnectedBipartite(r, 3+r.Intn(8), 3+r.Intn(8), 0.3)
		f := b.Freeze()
		// Restrict to a random connected-ish subset containing node 0.
		alive := make([]bool, b.N())
		for v := range alive {
			alive[v] = r.Float64() < 0.75
		}
		alive[0] = true
		var keep []int
		for v, a := range alive {
			if a {
				keep = append(keep, v)
			}
		}
		sub, _ := b.Induced(keep)
		want := sub.HypergraphV1().H
		got := f.HypergraphV1Alive(alive).H
		if !want.Equal(got) {
			t.Fatalf("alive-restricted H1 differs from induced H1:\n%v\n%v", want, got)
		}
	}
}

func TestFrozenIsSnapshot(t *testing.T) {
	b := bipartite.New()
	a := b.AddV1("a")
	r1 := b.AddV2("r1")
	b.AddEdge(a, r1)
	f := b.Freeze()
	r2 := b.AddV2("r2")
	b.AddEdge(a, r2)
	if f.N() != 2 || f.M() != 1 {
		t.Fatal("frozen bipartite view changed after mutation")
	}
	if f.Side(a) != graph.Side1 || f.Side(r1) != graph.Side2 {
		t.Fatal("sides wrong in snapshot")
	}
}
