// Package bipartite implements bipartite graphs with an explicit
// (V1, V2) partition and the correspondence of Definition 2 between
// bipartite graphs and hypergraphs: H¹G has the nodes of V1 and one edge
// per V2 node (its V1-neighbourhood), H²G symmetrically; the incidence
// graph construction inverts the correspondence.
//
// In the relational reading used throughout the paper, V1 holds the
// attributes and V2 the relation schemes, so H¹G is the database scheme
// hypergraph.
package bipartite
