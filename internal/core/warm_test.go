package core_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fixtures"
	"repro/internal/snapshot"
)

// warmQueries is the replay set for the warm round-trip tests: a mix that
// lands on different dispatch arms of the Figure 3(c) library scheme.
func warmQueries() [][]int {
	return [][]int{{0, 2}, {1, 5}, {0, 1, 2}, {3, 4, 5}}
}

// TestWarmSnapshotRoundTrip: SaveWarmSnapshot → Decode → OpenSnapshot
// yields a Service whose first queries are cache hits answering
// bit-for-bit what the original Service computed — no solver runs on the
// replay — with the restore visible as WarmFills.
func TestWarmSnapshotRoundTrip(t *testing.T) {
	ctx := context.Background()
	svc := core.NewService(core.New(fixtures.Fig3c()))
	queries := warmQueries()
	want := make([]core.Connection, len(queries))
	for i, q := range queries {
		c, err := svc.Connect(ctx, q)
		if err != nil {
			t.Fatalf("connect %v: %v", q, err)
		}
		want[i] = c
	}

	var buf bytes.Buffer
	if err := svc.SaveWarmSnapshot(&buf); err != nil {
		t.Fatalf("SaveWarmSnapshot: %v", err)
	}
	snap, err := snapshot.Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("warm snapshot does not decode: %v", err)
	}
	if len(snap.Warmup) != len(queries) {
		t.Fatalf("snapshot carries %d warm entries, want %d", len(snap.Warmup), len(queries))
	}

	warm := core.OpenSnapshot(snap)
	st := warm.Stats()
	if st.WarmFills != uint64(len(queries)) || st.Entries != len(queries) || st.Misses != 0 {
		t.Fatalf("restored stats %+v, want %d warm fills resident and no misses", st, len(queries))
	}
	if st.CostAddedNanos == 0 {
		t.Fatalf("restored entries carry no recompute cost: %+v", st)
	}
	for i, q := range queries {
		got, err := warm.Connect(ctx, q)
		if err != nil {
			t.Fatalf("warm connect %v: %v", q, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("restored answer for %v diverges:\n cold: %+v\n warm: %+v", q, want[i], got)
		}
	}
	st = warm.Stats()
	if st.Hits != uint64(len(queries)) || st.Misses != 0 {
		t.Fatalf("replay on restored cache: %+v, want %d hits / 0 misses", st, len(queries))
	}
	assertStatsReconcile(t, st, uint64(len(queries)))
}

// TestWarmSnapshotRespectsReceiverOptions: restore revalidates each entry
// against the receiving Service's own budgets — an entry over the new
// WithMaxTerminals bound is skipped, never installed, and everything else
// still lands.
func TestWarmSnapshotRespectsReceiverOptions(t *testing.T) {
	ctx := context.Background()
	svc := core.NewService(core.New(fixtures.Fig3c()))
	for _, q := range warmQueries() {
		if _, err := svc.Connect(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := svc.SaveWarmSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := snapshot.Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// Two of the four warm queries use 3 terminals.
	warm := core.OpenSnapshot(snap, core.WithMaxTerminals(2))
	if st := warm.Stats(); st.WarmFills != 2 || st.Entries != 2 {
		t.Fatalf("restore under WithMaxTerminals(2): %+v, want exactly the 2-terminal entries", st)
	}
}

// TestRegistrySwapCarriesWarmCache: swapping in a new epoch of the *same*
// scheme carries the settled cache across — the first query on the new
// epoch hits, bit-for-bit the fresh solve — while swapping in a different
// scheme carries nothing.
func TestRegistrySwapCarriesWarmCache(t *testing.T) {
	ctx := context.Background()
	reg := core.NewRegistry()
	reg.Set("library", fixtures.Fig3c())
	queries := warmQueries()
	want := make([]core.Connection, len(queries))
	for i, q := range queries {
		c, err := reg.Connect(ctx, "library", q)
		if err != nil {
			t.Fatalf("connect %v: %v", q, err)
		}
		want[i] = c
	}

	// Same scheme, recompiled: identical fingerprint, cache carries.
	next := core.NewService(core.New(fixtures.Fig3c()))
	if epoch := reg.Swap("library", next, core.SourceCompiled); epoch != 2 {
		t.Fatalf("swap epoch = %d, want 2", epoch)
	}
	st := next.Stats()
	if st.WarmFills != uint64(len(queries)) || st.Entries != len(queries) {
		t.Fatalf("post-swap stats %+v, want %d carried entries", st, len(queries))
	}
	fresh := core.New(fixtures.Fig3c())
	for i, q := range queries {
		got, err := reg.Connect(ctx, "library", q)
		if err != nil {
			t.Fatalf("post-swap connect %v: %v", q, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("carried answer for %v diverges from pre-swap answer", q)
		}
		direct, err := fresh.Connect(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, direct) {
			t.Fatalf("carried answer for %v diverges from a fresh solve:\ncarried: %+v\n fresh:  %+v", q, got, direct)
		}
	}
	st = next.Stats()
	if st.Hits != uint64(len(queries)) || st.Misses != 0 {
		t.Fatalf("replay after same-scheme swap: %+v, want all hits", st)
	}
	assertStatsReconcile(t, st, uint64(len(queries)))

	// Different scheme: fingerprints diverge, nothing carries.
	other := core.NewService(core.New(fixtures.Fig3b()))
	reg.Swap("library", other, core.SourceCompiled)
	if st := other.Stats(); st.WarmFills != 0 || st.Entries != 0 {
		t.Fatalf("cross-scheme swap carried entries: %+v", st)
	}
}
