package core_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/intset"
)

// plannerBatch builds a batch whose queries overlap on a small hub of
// terminals, so the planner groups most of them, plus a few isolated
// queries that must stay ungrouped.
func plannerBatch(r *rand.Rand, n, count int) [][]int {
	hub := r.Perm(n)[:3]
	var queries [][]int
	for i := 0; i < count; i++ {
		q := []int{hub[i%3]}
		if i%3 != 2 {
			q = append(q, hub[(i+1)%3])
		}
		q = append(q, r.Perm(n)[:2]...)
		queries = append(queries, intset.FromSlice(q)) // distinct, sorted
	}
	return queries
}

// TestConnectBatchPlannerEquivalence holds the batch planner to the
// bit-for-bit contract: answers computed through a group's shared
// component masks and distance rows must equal independent Connect calls
// on a planner-free connector — including errors (disconnected terminal
// sets flow through the shared component mask too).
func TestConnectBatchPlannerEquivalence(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(41))
	schemes := map[string]*bipartite.Graph{
		"tree":    gen.RandomTree(r, 120),                                    // (6,2)-chordal → Algorithm 2
		"acyclic": bipartite.FromHypergraph(gen.AlphaAcyclic(r, 24, 4, 3)).B, // α-acyclic → Algorithm 1
		"sparse":  gen.RandomBipartite(r, 16, 16, 0.12),                      // components → Exact / errors
		"dense":   gen.RandomBipartite(r, 18, 18, 0.35),                      // likely unclassified → Exact
	}
	for name, b := range schemes {
		svc := core.Open(b)
		ref := core.New(b) // independent, planner-free reference
		queries := plannerBatch(r, b.N(), 12)
		results := svc.ConnectBatch(ctx, queries)
		for i, res := range results {
			want, wantErr := ref.Connect(ctx, queries[i])
			if (res.Err == nil) != (wantErr == nil) {
				t.Fatalf("%s query %v: error mismatch: batch %v, reference %v", name, queries[i], res.Err, wantErr)
			}
			if wantErr != nil {
				if res.Err.Error() != wantErr.Error() {
					t.Fatalf("%s query %v: different errors: batch %v, reference %v", name, queries[i], res.Err, wantErr)
				}
				continue
			}
			if !reflect.DeepEqual(res.Conn, want) {
				t.Fatalf("%s query %v: batch answer differs from reference:\nbatch     %+v\nreference %+v", name, queries[i], res.Conn, want)
			}
		}
	}
}

// TestConnectBatchPlannerHeuristic drives the planner down the heuristic
// dispatch (many terminals, no chordality guarantee), the one path that
// consumes shared distance rows, and checks equivalence there too.
func TestConnectBatchPlannerHeuristic(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(43))
	b := gen.RandomBipartite(r, 30, 30, 0.25)
	svc := core.Open(b, core.WithExactLimit(2))
	ref := core.New(b, core.WithExactLimit(2))
	hub := intset.FromSlice(r.Perm(b.N())[:6])
	var queries [][]int
	for i := 0; i < 8; i++ {
		q := append([]int(nil), hub...)
		q = append(q, r.Perm(b.N())[:3]...)
		queries = append(queries, intset.FromSlice(q))
	}
	results := svc.ConnectBatch(ctx, queries)
	for i, res := range results {
		want, wantErr := ref.Connect(ctx, queries[i])
		if (res.Err == nil) != (wantErr == nil) ||
			(wantErr != nil && res.Err.Error() != wantErr.Error()) {
			t.Fatalf("query %v: error mismatch: batch %v, reference %v", queries[i], res.Err, wantErr)
		}
		if wantErr == nil && !reflect.DeepEqual(res.Conn, want) {
			t.Fatalf("query %v: batch answer differs from reference", queries[i])
		}
	}
}
