package core

import (
	"fmt"
	"strconv"
	"strings"
)

// config collects the compile-time knobs of New/NewService/Open. One option
// type covers both layers so a single option list can configure a whole
// stack (chordal.Open passes the same slice to the connector and the
// service); each constructor reads only the fields it owns.
type config struct {
	workers      int  // service: ConnectBatch pool size (<=0: GOMAXPROCS)
	cacheSize    int  // service: LRU capacity (<=0: DefaultCacheSize)
	cacheShards  int  // service: cache lock shards (<=0: cache.DefaultShards)
	exactLimit   int  // connector: exact-solver dispatch threshold
	maxTerminals int  // connector: per-query terminal budget (0: unlimited)
	v1Only       bool // connector: reject V2 terminal ids
}

// Option configures New, NewService, Open, and Registry.Set at
// construction time.
type Option func(*config)

// WithWorkers bounds the ConnectBatch worker pool. Non-positive selects
// GOMAXPROCS.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithCacheSize bounds the service's LRU answer cache. Non-positive
// selects DefaultCacheSize. The capacity is split across the cache's lock
// shards by ceiling division with a floor of one entry per shard, so the
// effective capacity (CacheStats.Capacity) rounds up to a multiple of the
// shard count and is never silently below the request.
func WithCacheSize(n int) Option { return func(c *config) { c.cacheSize = n } }

// WithCacheShards sets how many independently locked shards the service's
// answer cache is split into; n is rounded up to a power of two.
// Non-positive selects the default, GOMAXPROCS rounded up to a power of
// two and capped at 64. More shards cut lock contention on a warm
// high-QPS cache; WithCacheShards(1) restores the exact single-lock
// global-LRU semantics of v1 (useful when eviction order must be
// deterministic). Answers are identical at any shard count — only lock
// granularity and the eviction victim under capacity pressure change.
func WithCacheShards(n int) Option { return func(c *config) { c.cacheShards = n } }

// WithExactLimit sets the largest terminal count dispatched to the exact
// Dreyfus–Wagner solver on schemes without a polynomial guarantee; larger
// queries fall back to the 2-approximation. Non-positive selects
// DefaultExactLimit.
func WithExactLimit(k int) Option { return func(c *config) { c.exactLimit = k } }

// WithMaxTerminals caps the terminal count accepted per query; queries
// above the cap are rejected at the boundary with ErrTooManyTerminals
// before any solver runs. Non-positive means unlimited.
func WithMaxTerminals(n int) Option { return func(c *config) { c.maxTerminals = n } }

// WithV1TerminalsOnly restricts queries to V1 (attribute) terminals —
// the universal-relation deployment, where users name attributes and the
// relation schemes are the system's business. V2 ids are rejected with
// ErrInvalidTerminal.
func WithV1TerminalsOnly() Option { return func(c *config) { c.v1Only = true } }

// MethodAuto selects the dispatch-by-classification default of Connect
// (the strongest algorithm the scheme's chordality class admits).
const MethodAuto Method = -1

// queryConfig collects the per-query knobs of Connect/ConnectBatch.
type queryConfig struct {
	method      Method // MethodAuto: dispatch by classification
	exactLimit  int    // <=0: connector default
	maxAux      int    // interpretations: auxiliary-node bound
	interpLimit int    // interpretations requested (0: none)
	bypassCache bool   // service: skip the answer cache
}

// QueryOption configures a single Connect/ConnectBatch call.
type QueryOption func(*queryConfig)

// WithMethod forces a specific solver instead of dispatch by
// classification. A forced method may fail where the dispatcher would have
// chosen another (e.g. MethodAlgorithm1 on a scheme whose H¹ is not
// α-acyclic returns steiner.ErrNotAlphaAcyclic, MethodExact above the
// terminal limit returns ErrTooManyTerminals); the guarantee flags of the
// returned Connection reflect the scheme's class as usual.
func WithMethod(m Method) QueryOption { return func(q *queryConfig) { q.method = m } }

// WithQueryExactLimit overrides the connector's exact-solver dispatch
// threshold for this query only.
func WithQueryExactLimit(k int) QueryOption { return func(q *queryConfig) { q.exactLimit = k } }

// WithInterpretations also enumerates up to limit ranked alternative
// interpretations with at most maxAux auxiliary nodes each (the paper's
// interactive-disambiguation list) into Connection.Interps.
func WithInterpretations(maxAux, limit int) QueryOption {
	return func(q *queryConfig) { q.maxAux, q.interpLimit = maxAux, limit }
}

// WithCacheBypass makes a Service answer this query directly, neither
// reading nor writing the answer cache.
func WithCacheBypass() QueryOption { return func(q *queryConfig) { q.bypassCache = true } }

// newQueryConfig folds opts over the defaults.
func newQueryConfig(opts []QueryOption) queryConfig {
	q := queryConfig{method: MethodAuto}
	for _, o := range opts {
		o(&q)
	}
	return q
}

// fingerprint is the cache-key prefix encoding every option that changes
// the answer. The default configuration encodes to "" so the common path
// stays compact; bypassCache is deliberately excluded (it changes routing,
// not the answer).
func (q queryConfig) fingerprint() string {
	if q.method == MethodAuto && q.exactLimit <= 0 && q.interpLimit <= 0 {
		return ""
	}
	var sb strings.Builder
	if q.method != MethodAuto {
		sb.WriteByte('m')
		sb.WriteString(strconv.Itoa(int(q.method)))
	}
	if q.exactLimit > 0 {
		sb.WriteByte('e')
		sb.WriteString(strconv.Itoa(q.exactLimit))
	}
	if q.interpLimit > 0 {
		fmt.Fprintf(&sb, "i%d:%d", q.maxAux, q.interpLimit)
	}
	return sb.String()
}
