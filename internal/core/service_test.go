package core_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/fixtures"
	"repro/internal/gen"
)

// sameConnection compares the parts of a Connection that constitute the
// answer.
func sameConnection(a, b core.Connection) bool {
	return a.Method == b.Method && a.Optimal == b.Optimal &&
		a.V2Optimal == b.V2Optimal && a.Tree.Nodes.Equal(b.Tree.Nodes)
}

func TestServiceMatchesConnector(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial, b := range []*bipartite.Graph{
		fixtures.Fig2(),
		fixtures.Fig3b(),
		fixtures.Fig5(),
		bipartite.FromHypergraph(gen.GammaAcyclic(r, 20, 3, 3)).B,
		gen.RandomConnectedBipartite(r, 6, 6, 0.3),
	} {
		conn := core.New(b)
		svc := core.NewService(conn, 4, 64)
		for k := 0; k < 10; k++ {
			terms := []int{r.Intn(b.N()), r.Intn(b.N())}
			want, wantErr := conn.Connect(terms)
			got, gotErr := svc.Connect(terms)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("trial %d: error mismatch: %v vs %v", trial, wantErr, gotErr)
			}
			if wantErr == nil && !sameConnection(want, got) {
				t.Fatalf("trial %d: cached answer differs from direct answer", trial)
			}
			// Second lookup must hit the cache and return the same answer.
			again, againErr := svc.Connect(terms)
			if (gotErr == nil) != (againErr == nil) || (gotErr == nil && !sameConnection(got, again)) {
				t.Fatalf("trial %d: cache hit returned a different answer", trial)
			}
		}
	}
}

func TestServiceCacheCountsAndEviction(t *testing.T) {
	b := fixtures.Fig3b()
	conn := core.New(b)
	svc := core.NewService(conn, 1, 2) // capacity 2 forces eviction
	q1 := b.G().IDs("A", "C")
	q2 := b.G().IDs("A", "B")
	q3 := b.G().IDs("B", "C")

	svc.Connect(q1)
	svc.Connect(q1) // hit
	st := svc.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("after warm lookup: %+v", st)
	}
	svc.Connect(q2)
	svc.Connect(q3) // evicts q1 (least recently used)
	st = svc.Stats()
	if st.Entries != 2 {
		t.Fatalf("capacity not enforced: %+v", st)
	}
	svc.Connect(q1) // must recompute
	st = svc.Stats()
	if st.Misses != 4 {
		t.Fatalf("evicted entry should have missed: %+v", st)
	}

	// Terminal-set canonicalization: order and duplicates do not matter.
	svc.Connect([]int{q1[1], q1[0], q1[0]})
	if got := svc.Stats().Hits; got != 2 {
		t.Fatalf("permuted duplicate query should hit the cache, hits=%d", got)
	}
}

func TestServiceConnectBatchOrderAndErrors(t *testing.T) {
	// Disconnected scheme: two arcs in separate components.
	b := bipartite.New()
	a1, a2 := b.AddV1("a1"), b.AddV1("a2")
	r1, r2 := b.AddV2("r1"), b.AddV2("r2")
	b.AddEdge(a1, r1)
	b.AddEdge(a2, r2)
	svc := core.NewService(core.New(b), 3, 0)

	queries := [][]int{
		{a1, r1},
		{a1, a2}, // spans components: error
		{a2, r2},
		{a1, r1}, // duplicate: cache hit
	}
	results := svc.ConnectBatch(queries)
	if len(results) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(results), len(queries))
	}
	for i, r := range results {
		if fmt.Sprint(r.Terminals) != fmt.Sprint(queries[i]) {
			t.Fatalf("result %d out of order", i)
		}
	}
	if results[1].Err == nil {
		t.Error("query across components should error")
	}
	for _, i := range []int{0, 2, 3} {
		if results[i].Err != nil {
			t.Errorf("query %d: %v", i, results[i].Err)
		}
	}
	if !results[0].Conn.Tree.Nodes.Equal(results[3].Conn.Tree.Nodes) {
		t.Error("duplicate queries disagree")
	}
	if st := svc.Stats(); st.Hits < 1 {
		t.Errorf("duplicate in batch should hit cache: %+v", st)
	}
	if res := svc.ConnectBatch(nil); len(res) != 0 {
		t.Errorf("empty batch should return no results")
	}
}

// TestServiceConcurrentHammer drives one Service from many goroutines with
// both repeated and distinct terminal sets; under -race it asserts the
// frozen view + cache locking are sound, and it checks every concurrent
// answer against the sequential one.
func TestServiceConcurrentHammer(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	b := bipartite.FromHypergraph(gen.GammaAcyclic(r, 30, 3, 3)).B
	conn := core.New(b)
	svc := core.NewService(conn, 8, 16) // small cache: eviction under load

	type query struct {
		terms []int
		conn  core.Connection
		err   error
	}
	var queries []query
	for k := 0; k < 24; k++ {
		terms := []int{r.Intn(b.N()), r.Intn(b.N()), r.Intn(b.N())}
		c, err := conn.Connect(terms)
		queries = append(queries, query{terms: terms, conn: c, err: err})
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(int64(seed)))
			for i := 0; i < 50; i++ {
				q := queries[rr.Intn(len(queries))]
				got, err := svc.Connect(q.terms)
				if (err == nil) != (q.err == nil) {
					errs <- fmt.Errorf("error mismatch for %v: %v vs %v", q.terms, err, q.err)
					return
				}
				if err == nil && !sameConnection(got, q.conn) {
					errs <- fmt.Errorf("concurrent answer for %v differs", q.terms)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := svc.Stats()
	if st.Hits+st.Misses != goroutines*50 {
		t.Errorf("lookup accounting off: %+v", st)
	}
}

// TestConnectorConcurrent hammers a bare Connector (no Service cache) from
// many goroutines — the frozen view itself must be safe without any
// synchronization.
func TestConnectorConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	b := bipartite.FromHypergraph(gen.AlphaAcyclic(r, 25, 4, 3)).B
	conn := core.New(b)
	terms := [][]int{
		{0, b.N() - 1},
		{1, b.N() / 2},
		{0, 1, 2},
	}
	want := make([]core.Connection, len(terms))
	wantErr := make([]error, len(terms))
	for i, q := range terms {
		want[i], wantErr[i] = conn.Connect(q)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				k := (w + i) % len(terms)
				got, err := conn.Connect(terms[k])
				if (err == nil) != (wantErr[k] == nil) {
					errs <- fmt.Errorf("error mismatch on %v", terms[k])
					return
				}
				if err == nil && !sameConnection(got, want[k]) {
					errs <- fmt.Errorf("concurrent Connect differs on %v", terms[k])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServicePanicDoesNotPoisonCache asserts that a panicking query (an
// out-of-range terminal id panics in the graph layer) propagates to its
// caller but neither deadlocks later queries on the same key nor leaves a
// half-built entry cached.
func TestServicePanicDoesNotPoisonCache(t *testing.T) {
	b := fixtures.Fig3b()
	svc := core.NewService(core.New(b), 2, 8)
	bad := []int{b.N() + 100}

	mustPanic := func() (panicked bool) {
		defer func() { panicked = recover() != nil }()
		svc.Connect(bad)
		return false
	}
	if !mustPanic() {
		t.Fatal("out-of-range terminal should panic")
	}
	// The key must not be poisoned: a retry panics again (it recomputes)
	// rather than blocking forever on the first attempt's entry.
	retried := make(chan bool, 1)
	go func() { retried <- mustPanic() }()
	select {
	case again := <-retried:
		if !again {
			t.Fatal("retry should panic again, not return")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry deadlocked on the poisoned cache entry")
	}
	if st := svc.Stats(); st.Entries != 0 {
		t.Fatalf("panicked entry left in cache: %+v", st)
	}
	// Healthy queries still work.
	if _, err := svc.Connect(b.G().IDs("A", "C")); err != nil {
		t.Fatalf("service broken after panic: %v", err)
	}
}
