package core_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/fixtures"
	"repro/internal/gen"
)

// sameConnection compares the parts of a Connection that constitute the
// answer.
func sameConnection(a, b core.Connection) bool {
	return a.Method == b.Method && a.Optimal == b.Optimal &&
		a.V2Optimal == b.V2Optimal && a.Tree.Nodes.Equal(b.Tree.Nodes)
}

// distinctTerms draws k distinct node ids.
func distinctTerms(r *rand.Rand, n, k int) []int {
	return r.Perm(n)[:k]
}

func TestServiceMatchesConnector(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(71))
	for trial, b := range []*bipartite.Graph{
		fixtures.Fig2(),
		fixtures.Fig3b(),
		fixtures.Fig5(),
		bipartite.FromHypergraph(gen.GammaAcyclic(r, 20, 3, 3)).B,
		gen.RandomConnectedBipartite(r, 6, 6, 0.3),
	} {
		conn := core.New(b)
		svc := core.NewService(conn, core.WithWorkers(4), core.WithCacheSize(64))
		for k := 0; k < 10; k++ {
			terms := distinctTerms(r, b.N(), 2)
			want, wantErr := conn.Connect(ctx, terms)
			got, gotErr := svc.Connect(ctx, terms)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("trial %d: error mismatch: %v vs %v", trial, wantErr, gotErr)
			}
			if wantErr == nil && !sameConnection(want, got) {
				t.Fatalf("trial %d: cached answer differs from direct answer", trial)
			}
			// Second lookup must hit the cache and return the same answer.
			again, againErr := svc.Connect(ctx, terms)
			if (gotErr == nil) != (againErr == nil) || (gotErr == nil && !sameConnection(got, again)) {
				t.Fatalf("trial %d: cache hit returned a different answer", trial)
			}
		}
	}
}

func TestServiceCacheCountsAndEviction(t *testing.T) {
	ctx := context.Background()
	b := fixtures.Fig3b()
	conn := core.New(b)
	// One shard: the test pins *global* LRU counting and eviction, which
	// only a single-shard cache guarantees (capacity 2 forces eviction).
	svc := core.NewService(conn, core.WithWorkers(1), core.WithCacheSize(2), core.WithCacheShards(1))
	q1 := b.G().IDs("A", "C")
	q2 := b.G().IDs("A", "B")
	q3 := b.G().IDs("B", "C")

	svc.Connect(ctx, q1)
	svc.Connect(ctx, q1) // hit
	st := svc.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("after warm lookup: %+v", st)
	}
	svc.Connect(ctx, q2)
	svc.Connect(ctx, q3) // evicts q1 (least recently used)
	st = svc.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("capacity not enforced: %+v", st)
	}
	svc.Connect(ctx, q1) // must recompute
	st = svc.Stats()
	if st.Misses != 4 || st.Evictions != 2 {
		t.Fatalf("evicted entry should have missed: %+v", st)
	}

	// Terminal-set canonicalization: order does not matter.
	svc.Connect(ctx, []int{q1[1], q1[0]})
	if got := svc.Stats().Hits; got != 2 {
		t.Fatalf("permuted query should hit the cache, hits=%d", got)
	}
}

// TestServiceLRUEvictionOrder pins the eviction policy: capacity pressure
// drops the least recently *used* entry, where a cache hit refreshes
// recency.
func TestServiceLRUEvictionOrder(t *testing.T) {
	ctx := context.Background()
	b := fixtures.Fig3b()
	// One shard: eviction order is only globally-LRU when one list holds
	// every entry.
	svc := core.NewService(core.New(b), core.WithCacheSize(2), core.WithCacheShards(1))
	q1 := b.G().IDs("A", "C")
	q2 := b.G().IDs("A", "B")
	q3 := b.G().IDs("B", "C")

	svc.Connect(ctx, q1)
	svc.Connect(ctx, q2)
	svc.Connect(ctx, q1) // refresh q1: q2 is now the LRU entry
	svc.Connect(ctx, q3) // evicts q2, not q1
	st := svc.Stats()    // so far: 2 hits? no — q1 twice (1 hit), q2, q3
	if st.Evictions != 1 {
		t.Fatalf("expected exactly one eviction: %+v", st)
	}
	misses := st.Misses
	svc.Connect(ctx, q1) // must still be resident
	if got := svc.Stats(); got.Misses != misses {
		t.Fatalf("q1 was evicted despite being most recently used: %+v", got)
	}
	svc.Connect(ctx, q2) // must have been evicted
	if got := svc.Stats(); got.Misses != misses+1 {
		t.Fatalf("q2 should have been the LRU victim: %+v", got)
	}
}

// TestServiceCacheBypass asserts WithCacheBypass answers correctly without
// reading or writing the cache.
func TestServiceCacheBypass(t *testing.T) {
	ctx := context.Background()
	b := fixtures.Fig3b()
	conn := core.New(b)
	svc := core.NewService(conn)
	q := b.G().IDs("A", "C")

	want, err := conn.Connect(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := svc.Connect(ctx, q, core.WithCacheBypass())
	if err != nil {
		t.Fatal(err)
	}
	if !sameConnection(want, got) {
		t.Fatal("bypass answer differs from direct answer")
	}
	st := svc.Stats()
	if st.Entries != 0 || st.Hits != 0 || st.Misses != 0 || st.Bypasses != 1 {
		t.Fatalf("bypass touched the cache: %+v", st)
	}
	// Populate, then bypass again: still no hit recorded, same answer.
	svc.Connect(ctx, q)
	got, err = svc.Connect(ctx, q, core.WithCacheBypass())
	if err != nil || !sameConnection(want, got) {
		t.Fatalf("bypass after populate wrong: %v", err)
	}
	st = svc.Stats()
	if st.Hits != 0 || st.Misses != 1 || st.Bypasses != 2 {
		t.Fatalf("bypass accounting off: %+v", st)
	}
}

// TestServiceOptionAwareCacheKeys asserts that per-query options that
// change the answer get their own cache entries instead of colliding with
// the default answer.
func TestServiceOptionAwareCacheKeys(t *testing.T) {
	ctx := context.Background()
	b := gen.GridBipartite(3, 4) // no guarantee: method override matters
	svc := core.NewService(core.New(b))
	q := []int{0, 11}

	plain, err := svc.Connect(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Method != core.MethodExact {
		t.Fatalf("dispatch = %v, want exact", plain.Method)
	}
	forced, err := svc.Connect(ctx, q, core.WithMethod(core.MethodHeuristic))
	if err != nil {
		t.Fatal(err)
	}
	if forced.Method != core.MethodHeuristic {
		t.Fatalf("forced method not honored through the cache: %v", forced.Method)
	}
	st := svc.Stats()
	if st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("variant should occupy its own entry: %+v", st)
	}
	// Re-asking each variant hits its own entry.
	again, _ := svc.Connect(ctx, q)
	forcedAgain, _ := svc.Connect(ctx, q, core.WithMethod(core.MethodHeuristic))
	if again.Method != core.MethodExact || forcedAgain.Method != core.MethodHeuristic {
		t.Fatal("cache returned the wrong variant")
	}
	if st := svc.Stats(); st.Hits != 2 {
		t.Fatalf("variants should hit their own entries: %+v", st)
	}
}

func TestServiceConnectBatchOrderAndErrors(t *testing.T) {
	ctx := context.Background()
	// Disconnected scheme: two arcs in separate components.
	b := bipartite.New()
	a1, a2 := b.AddV1("a1"), b.AddV1("a2")
	r1, r2 := b.AddV2("r1"), b.AddV2("r2")
	b.AddEdge(a1, r1)
	b.AddEdge(a2, r2)
	svc := core.NewService(core.New(b), core.WithWorkers(3))

	queries := [][]int{
		{a1, r1},
		{a1, a2}, // spans components: error
		{a2, r2},
		{a1, r1}, // duplicate: cache hit
	}
	results := svc.ConnectBatch(ctx, queries)
	if len(results) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(results), len(queries))
	}
	for i, r := range results {
		if fmt.Sprint(r.Terminals) != fmt.Sprint(queries[i]) {
			t.Fatalf("result %d out of order", i)
		}
	}
	if results[1].Err == nil {
		t.Error("query across components should error")
	}
	for _, i := range []int{0, 2, 3} {
		if results[i].Err != nil {
			t.Errorf("query %d: %v", i, results[i].Err)
		}
	}
	if !results[0].Conn.Tree.Nodes.Equal(results[3].Conn.Tree.Nodes) {
		t.Error("duplicate queries disagree")
	}
	if st := svc.Stats(); st.Hits < 1 {
		t.Errorf("duplicate in batch should hit cache: %+v", st)
	}
	if res := svc.ConnectBatch(ctx, nil); len(res) != 0 {
		t.Errorf("empty batch should return no results")
	}
}

// TestServiceConcurrentHammer drives one Service from many goroutines with
// both repeated and distinct terminal sets, mixing cached and bypass
// lookups; under -race it asserts the frozen view + cache locking (incl.
// the eviction counter) are sound, and it checks every concurrent answer
// against the sequential one.
func TestServiceConcurrentHammer(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(73))
	b := bipartite.FromHypergraph(gen.GammaAcyclic(r, 30, 3, 3)).B
	conn := core.New(b)
	svc := core.NewService(conn, core.WithWorkers(8), core.WithCacheSize(16)) // small cache: eviction under load

	type query struct {
		terms []int
		conn  core.Connection
		err   error
	}
	var queries []query
	for k := 0; k < 24; k++ {
		terms := distinctTerms(r, b.N(), 3)
		c, err := conn.Connect(ctx, terms)
		queries = append(queries, query{terms: terms, conn: c, err: err})
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(int64(seed)))
			for i := 0; i < 50; i++ {
				q := queries[rr.Intn(len(queries))]
				var opts []core.QueryOption
				if i%10 == 9 {
					opts = append(opts, core.WithCacheBypass())
				}
				got, err := svc.Connect(ctx, q.terms, opts...)
				if (err == nil) != (q.err == nil) {
					errs <- fmt.Errorf("error mismatch for %v: %v vs %v", q.terms, err, q.err)
					return
				}
				if err == nil && !sameConnection(got, q.conn) {
					errs <- fmt.Errorf("concurrent answer for %v differs", q.terms)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := svc.Stats()
	if st.Hits+st.Misses+st.Bypasses != goroutines*50 {
		t.Errorf("lookup accounting off: %+v", st)
	}
	if st.Entries > st.Capacity {
		t.Errorf("capacity exceeded under load: %+v", st)
	}
	sum := 0
	for _, n := range st.ShardEntries {
		sum += n
	}
	if sum != st.Entries || len(st.ShardEntries) != st.Shards {
		t.Errorf("per-shard occupancy inconsistent: %+v", st)
	}
}

// TestConnectorConcurrent hammers a bare Connector (no Service cache) from
// many goroutines — the frozen view itself must be safe without any
// synchronization.
func TestConnectorConcurrent(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(79))
	b := bipartite.FromHypergraph(gen.AlphaAcyclic(r, 25, 4, 3)).B
	conn := core.New(b)
	terms := [][]int{
		{0, b.N() - 1},
		{1, b.N() / 2},
		{0, 1, 2},
	}
	want := make([]core.Connection, len(terms))
	wantErr := make([]error, len(terms))
	for i, q := range terms {
		want[i], wantErr[i] = conn.Connect(ctx, q)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				k := (w + i) % len(terms)
				got, err := conn.Connect(ctx, terms[k])
				if (err == nil) != (wantErr[k] == nil) {
					errs <- fmt.Errorf("error mismatch on %v", terms[k])
					return
				}
				if err == nil && !sameConnection(got, want[k]) {
					errs <- fmt.Errorf("concurrent Connect differs on %v", terms[k])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServiceRejectsInvalidQueries asserts the boundary validation: v1 let
// an out-of-range id flow into the graph layer and panic; v2 rejects it —
// and every other malformed query — with a typed error before dispatch,
// and never caches the rejection.
func TestServiceRejectsInvalidQueries(t *testing.T) {
	ctx := context.Background()
	b := fixtures.Fig3b()
	svc := core.NewService(core.New(b), core.WithWorkers(2), core.WithCacheSize(8))

	for name, tc := range map[string]struct {
		terms []int
		want  error
	}{
		"out-of-range": {[]int{b.N() + 100}, core.ErrInvalidTerminal},
		"negative":     {[]int{-1}, core.ErrInvalidTerminal},
		"duplicate":    {[]int{0, 0}, core.ErrInvalidTerminal},
		"empty":        {nil, core.ErrEmptyQuery},
	} {
		if _, err := svc.Connect(ctx, tc.terms); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", name, err, tc.want)
		}
	}
	if st := svc.Stats(); st.Entries != 0 || st.Misses != 0 {
		t.Fatalf("invalid queries must not touch the cache: %+v", st)
	}
	// Healthy queries still work.
	if _, err := svc.Connect(ctx, b.G().IDs("A", "C")); err != nil {
		t.Fatalf("service broken after rejections: %v", err)
	}
}
