package core_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/core"
)

// pathScheme builds two epochs of "the same" scheme — A and B keep ids 0
// and 1, but the direct hub A—r1—B of the first epoch is replaced by the
// chain A—r1—C—r2—B in the second, so the minimal connection (3 vs 5
// nodes) tells the epochs apart.
func pathScheme(chain bool) *bipartite.Graph {
	b := bipartite.New()
	a := b.AddV1("A")
	bb := b.AddV1("B")
	r1 := b.AddV2("r1")
	b.AddEdge(a, r1)
	if !chain {
		b.AddEdge(bb, r1)
		return b
	}
	c := b.AddV1("C")
	r2 := b.AddV2("r2")
	b.AddEdge(c, r1)
	b.AddEdge(c, r2)
	b.AddEdge(bb, r2)
	return b
}

func TestRegistryBasics(t *testing.T) {
	ctx := context.Background()
	reg := core.NewRegistry()
	if _, err := reg.Connect(ctx, "ghost", []int{0}); !errors.Is(err, core.ErrUnknownScheme) {
		t.Fatalf("unknown scheme: err = %v", err)
	}
	if reg.Epoch("ghost") != 0 || reg.Len() != 0 {
		t.Fatal("empty registry reports entries")
	}

	reg.Set("s", pathScheme(false))
	if got := reg.Epoch("s"); got != 1 {
		t.Fatalf("epoch after install = %d", got)
	}
	conn, err := reg.Connect(ctx, "s", []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if conn.Tree.Nodes.Len() != 3 {
		t.Fatalf("path answer = %v", conn.Tree.Nodes)
	}

	reg.Set("t", pathScheme(true))
	if got := fmt.Sprint(reg.Names()); got != "[s t]" {
		t.Fatalf("Names = %s", got)
	}
	reg.Set("s", pathScheme(true)) // swap
	if got := reg.Epoch("s"); got != 2 {
		t.Fatalf("epoch after swap = %d", got)
	}
	if !reg.Drop("t") || reg.Drop("t") {
		t.Fatal("Drop bookkeeping wrong")
	}
	if _, ok := reg.Get("t"); ok {
		t.Fatal("dropped scheme still resolvable")
	}
	// The epoch counter is monotonic across drop/reinstall, so pollers
	// never mistake a re-installed scheme for the one they already saw.
	if got := reg.Epoch("t"); got != 0 {
		t.Fatalf("dropped scheme should report epoch 0, got %d", got)
	}
	reg.Set("t", pathScheme(true))
	if got := reg.Epoch("t"); got != 2 {
		t.Fatalf("epoch after drop+reinstall = %d, want 2", got)
	}
}

// TestRegistrySwapHammer runs compile-and-swap updates against concurrent
// readers; under -race it asserts the copy-on-write contract: every reader
// sees a complete epoch (one of the two valid answers), never a torn or
// stale-beyond-epoch state, and a Service resolved before a swap keeps
// answering on its frozen epoch.
func TestRegistrySwapHammer(t *testing.T) {
	ctx := context.Background()
	reg := core.NewRegistry()
	b1 := pathScheme(false)
	b2 := pathScheme(true)
	terms := []int{0, 1} // A, B in both epochs

	want1, err := core.New(b1).Connect(ctx, terms)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := core.New(b2).Connect(ctx, terms)
	if err != nil {
		t.Fatal(err)
	}
	if want1.Tree.Nodes.Equal(want2.Tree.Nodes) {
		t.Fatal("epoch answers must differ for the hammer to mean anything")
	}
	valid := func(c core.Connection) bool {
		return c.Tree.Nodes.Equal(want1.Tree.Nodes) || c.Tree.Nodes.Equal(want2.Tree.Nodes)
	}

	reg.Set("s", b1)
	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	stop := make(chan struct{})

	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Per-query lookup: must see some complete epoch.
				c, err := reg.Connect(ctx, "s", terms)
				if err != nil {
					errs <- fmt.Errorf("reader Connect: %v", err)
					return
				}
				if !valid(c) {
					errs <- fmt.Errorf("torn answer: %v", c.Tree.Nodes)
					return
				}
				// Held Service: the old epoch must stay fully usable even
				// if a swap lands between Get and Connect.
				svc, ok := reg.Get("s")
				if !ok {
					errs <- errors.New("scheme vanished mid-hammer")
					return
				}
				if c, err := svc.Connect(ctx, terms); err != nil || !valid(c) {
					errs <- fmt.Errorf("held-epoch answer wrong: %v %v", err, c.Tree.Nodes)
					return
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 40; i++ {
			if i%2 == 0 {
				reg.Set("s", b2)
			} else {
				reg.Set("s", b1)
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := reg.Epoch("s"); got != 41 {
		t.Errorf("epoch after 1+40 sets = %d", got)
	}
}
