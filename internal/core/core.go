// Package core assembles the paper's results into the system its
// introduction motivates: a logically-independent connection service. A
// Connector classifies a conceptual scheme (a bipartite graph) once against
// the chordality taxonomy of Section 2, then answers minimal-connection
// queries (Section 3) with the strongest algorithm the class admits:
//
//	(6,2)-chordal                 → Algorithm 2: node-minimum Steiner tree,
//	                                polynomial (Theorem 5)
//	V1-chordal ∧ V1-conformal     → Algorithm 1: tree minimizing auxiliary
//	                                relations (V2 nodes), polynomial
//	                                (Theorems 3–4); total node count is
//	                                NP-complete here (Theorem 2)
//	otherwise                     → exact Dreyfus–Wagner when the terminal
//	                                count is small, else the 2-approximation
//
// Connector also enumerates ranked alternative interpretations of a query
// (the interactive-disambiguation loop sketched in the introduction).
//
// # Frozen-view serving architecture
//
// New compiles the scheme once: it freezes the bipartite graph into the
// immutable CSR view of internal/graph and internal/bipartite, classifies
// that view (chordality.ClassifyFrozen), and answers every Connect on the
// frozen-path solvers of internal/steiner. Because the frozen view and the
// classification never change, a Connector is safe for unsynchronized
// concurrent Connect calls — the scheme passed to New must simply not be
// mutated afterwards (the classify-once contract).
//
// Service wraps a Connector for query-many workloads: ConnectBatch fans a
// query batch out over a bounded worker pool, and an LRU cache keyed on the
// canonical terminal set makes repeated or overlapping queries (the paper's
// interactive-disambiguation loop) cache hits instead of Steiner reruns.
package core

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/chordality"
	"repro/internal/intset"
	"repro/internal/steiner"
)

// Method identifies which algorithm produced a connection.
type Method int

// Methods, strongest guarantee first.
const (
	MethodAlgorithm2 Method = iota // Theorem 5: optimal Steiner tree
	MethodAlgorithm1               // Theorem 3: V2-minimum tree
	MethodExact                    // Dreyfus–Wagner (exponential in |P|)
	MethodHeuristic                // metric-closure 2-approximation
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodAlgorithm2:
		return "algorithm-2"
	case MethodAlgorithm1:
		return "algorithm-1"
	case MethodExact:
		return "exact"
	case MethodHeuristic:
		return "heuristic"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Connection is an answered minimal-connection query.
type Connection struct {
	Tree      steiner.Tree
	Method    Method
	Optimal   bool   // total node count is guaranteed minimum
	V2Optimal bool   // the number of V2 nodes is guaranteed minimum
	Rationale string // which classification/theorem justified the method
}

// Connector answers minimal-connection queries over a fixed scheme. It is
// built on the frozen CSR view, so concurrent Connect calls need no
// synchronization; the scheme must not be mutated after New.
type Connector struct {
	b     *bipartite.Graph
	fb    *bipartite.Frozen
	class chordality.Class
	// ExactLimit bounds the terminal count for which the exact solver is
	// used on hard classes; above it the heuristic answers. Default 12.
	ExactLimit int
}

// New compiles the scheme once — freeze + classify, both polynomial — and
// returns a Connector answering queries on the frozen view.
func New(b *bipartite.Graph) *Connector {
	fb := b.Freeze()
	return &Connector{b: b, fb: fb, class: chordality.ClassifyFrozen(fb), ExactLimit: 12}
}

// Class returns the scheme's chordality classification.
func (c *Connector) Class() chordality.Class { return c.class }

// Graph returns the underlying bipartite scheme.
func (c *Connector) Graph() *bipartite.Graph { return c.b }

// Frozen returns the compiled scheme view queries are answered on.
func (c *Connector) Frozen() *bipartite.Frozen { return c.fb }

// Connect returns a minimal connection over the terminals, dispatched by
// the scheme's class.
func (c *Connector) Connect(terminals []int) (Connection, error) {
	switch {
	case c.class.Chordal62:
		tree, err := steiner.Algorithm2Frozen(c.fb.G(), terminals)
		if err != nil {
			return Connection{}, err
		}
		// A node-minimum tree need not minimize the V2 count. Since
		// (6,2)-chordal ⟹ (6,1)-chordal ⟹ V1-chordal ∧ V1-conformal
		// (Corollary 2), Algorithm 1 also applies here: use it to certify
		// (or refute) V2-minimality of the Theorem 5 tree.
		v2Optimal := false
		if t1, err := steiner.Algorithm1Frozen(c.fb, terminals); err == nil {
			v2Optimal = steiner.V2Count(c.b, tree) == steiner.V2Count(c.b, t1)
		}
		return Connection{
			Tree: tree, Method: MethodAlgorithm2, Optimal: true, V2Optimal: v2Optimal,
			Rationale: "(6,2)-chordal scheme: every nonredundant cover is minimum (Theorem 5)",
		}, nil
	case c.class.AlphaV1():
		tree, err := steiner.Algorithm1Frozen(c.fb, terminals)
		if err != nil {
			return Connection{}, err
		}
		return Connection{
			Tree: tree, Method: MethodAlgorithm1, Optimal: false, V2Optimal: true,
			Rationale: "V1-chordal, V1-conformal scheme (alpha-acyclic H¹): minimal number of relations via the Lemma 1 elimination ordering (Theorem 3); total minimality is NP-complete here (Theorem 2)",
		}, nil
	case len(terminals) <= c.ExactLimit:
		tree, err := steiner.ExactFrozen(c.fb.G(), terminals)
		if err != nil {
			return Connection{}, err
		}
		return Connection{
			Tree: tree, Method: MethodExact, Optimal: true, V2Optimal: false,
			Rationale: fmt.Sprintf("no chordality guarantee: exact search over %d terminals (exponential, Theorem 2 forbids better in general)", len(terminals)),
		}, nil
	default:
		tree, err := steiner.ApproximateFrozen(c.fb.G(), terminals)
		if err != nil {
			return Connection{}, err
		}
		return Connection{
			Tree: tree, Method: MethodHeuristic, Optimal: false, V2Optimal: false,
			Rationale: "no chordality guarantee and too many terminals for exact search: metric-closure 2-approximation",
		}, nil
	}
}

// Interpretation is one candidate connection in a ranked enumeration:
// a nonredundant cover of the query with its auxiliary (non-terminal)
// objects.
type Interpretation struct {
	Nodes     intset.Set
	Auxiliary intset.Set // Nodes minus the terminals
}

// Interpretations enumerates connections over the terminals ranked by the
// number of auxiliary objects — the paper's interactive-disambiguation
// order, where the minimal interpretation is proposed first. It lists
// nonredundant covers with at most maxAux auxiliary nodes, up to limit
// results, smallest first (ties broken canonically).
//
// The enumeration (steiner.RankedCovers) is exponential in maxAux, matching
// the interactive use-case of schema-sized graphs.
func (c *Connector) Interpretations(terminals []int, maxAux, limit int) []Interpretation {
	p := intset.FromSlice(terminals)
	covers := steiner.RankedCovers(c.b.G(), terminals, maxAux, limit)
	out := make([]Interpretation, len(covers))
	for i, sel := range covers {
		out[i] = Interpretation{Nodes: sel, Auxiliary: sel.Diff(p)}
	}
	return out
}

// Describe renders the classification for humans (CLI output).
func (c *Connector) Describe() string {
	cl := c.class
	s := "scheme classification:\n"
	row := func(name string, v bool) string {
		mark := "no"
		if v {
			mark = "yes"
		}
		return fmt.Sprintf("  %-28s %s\n", name, mark)
	}
	s += row("(4,1)-chordal (acyclic)", cl.Chordal41)
	s += row("(6,2)-chordal", cl.Chordal62)
	s += row("(6,1)-chordal", cl.Chordal61)
	s += row("V1-chordal", cl.V1Chordal)
	s += row("V1-conformal", cl.V1Conformal)
	s += row("V2-chordal", cl.V2Chordal)
	s += row("V2-conformal", cl.V2Conformal)
	switch {
	case cl.Chordal62:
		s += "  => Steiner trees solvable exactly in polynomial time (Theorem 5)\n"
	case cl.AlphaV1():
		s += "  => pseudo-Steiner w.r.t. V2 polynomial (Theorem 3); Steiner NP-complete (Theorem 2)\n"
	default:
		s += "  => no polynomial guarantee from the paper's taxonomy\n"
	}
	return s
}
