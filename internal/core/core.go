package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/bipartite"
	"repro/internal/chordality"
	"repro/internal/intset"
	"repro/internal/snapshot"
	"repro/internal/steiner"
)

// Method identifies which algorithm produced a connection (see also
// MethodAuto in options.go, the Connect default).
type Method int

// Methods, strongest guarantee first.
const (
	MethodAlgorithm2 Method = iota // Theorem 5: optimal Steiner tree
	MethodAlgorithm1               // Theorem 3: V2-minimum tree
	MethodExact                    // Dreyfus–Wagner (exponential in |P|)
	MethodHeuristic                // metric-closure 2-approximation
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodAuto:
		return "auto"
	case MethodAlgorithm2:
		return "algorithm-2"
	case MethodAlgorithm1:
		return "algorithm-1"
	case MethodExact:
		return "exact"
	case MethodHeuristic:
		return "heuristic"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Connection is an answered minimal-connection query.
type Connection struct {
	Tree      steiner.Tree
	Method    Method
	Optimal   bool   // total node count is guaranteed minimum
	V2Optimal bool   // the number of V2 nodes is guaranteed minimum
	Rationale string // which classification/theorem justified the method
	// Interps holds the ranked alternative interpretations when the query
	// asked for them (WithInterpretations); nil otherwise.
	Interps []Interpretation
}

// DefaultExactLimit is the terminal count up to which schemes without a
// polynomial guarantee are answered exactly (Dreyfus–Wagner) rather than
// by the 2-approximation. Override per connector with WithExactLimit or
// per query with WithQueryExactLimit.
const DefaultExactLimit = 12

// Connector answers minimal-connection queries over a fixed scheme. It is
// built on the frozen CSR view, so concurrent Connect calls need no
// synchronization; the scheme must not be mutated after New.
type Connector struct {
	fb    *bipartite.Frozen
	class chordality.Class
	cfg   config
	// snapVersion stamps a connector revived from a persisted epoch with
	// the snapshot's format version; 0 means compiled live.
	snapVersion uint16

	// b is the mutable scheme view. New sets it eagerly (the caller's
	// graph); NewFromSnapshot leaves it nil and thaws it from the frozen
	// view on first use, so booting from a snapshot does no graph rebuild
	// unless a code path actually needs the mutable form (ranked-cover
	// enumeration, label resolution at the HTTP boundary).
	thawOnce sync.Once
	b        *bipartite.Graph

	// fp is the lazily computed scheme fingerprint (SchemeFingerprint):
	// an O(scheme) encode+hash paid at most once per connector, and only
	// by code paths that actually compare epochs (warmup, epoch swaps).
	fpOnce sync.Once
	fp     []byte
}

// newConfig folds construction options over the defaults.
func newConfig(opts []Option) config {
	cfg := config{exactLimit: DefaultExactLimit}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.exactLimit <= 0 {
		cfg.exactLimit = DefaultExactLimit
	}
	return cfg
}

// New compiles the scheme once — freeze + classify, both polynomial — and
// returns a Connector answering queries on the frozen view. Recognized
// options: WithExactLimit, WithMaxTerminals, WithV1TerminalsOnly.
func New(b *bipartite.Graph, opts ...Option) *Connector {
	fb := b.Freeze()
	return &Connector{b: b, fb: fb, class: chordality.ClassifyFrozen(fb), cfg: newConfig(opts)}
}

// NewFromSnapshot revives a Connector from a decoded snapshot without any
// recompilation: the frozen view and the classification come straight from
// the file, so construction is O(1) regardless of scheme size. Answers are
// bit-for-bit identical to a Connector compiled live from the same scheme
// (the round-trip property suite in internal/snapshot holds it to that).
// The same construction options as New apply.
func NewFromSnapshot(snap *snapshot.Snapshot, opts ...Option) *Connector {
	return &Connector{fb: snap.Frozen, class: snap.Class, cfg: newConfig(opts), snapVersion: snap.Version}
}

// Open compiles the scheme and wraps it for concurrent serving in one
// call: Open(b, opts...) ≡ NewService(New(b, opts...), opts...).
func Open(b *bipartite.Graph, opts ...Option) *Service {
	return NewService(New(b, opts...), opts...)
}

// OpenSnapshot is Open for a decoded snapshot: a cached, concurrent
// Service over the revived epoch, with zero recompile work. When the
// snapshot carries a warmup section (already fingerprint-validated by
// Decode), its answers are installed before the Service is returned, so
// the first queries of the new process are cache hits — entries the
// service's own options reject are skipped, never installed.
func OpenSnapshot(snap *snapshot.Snapshot, opts ...Option) *Service {
	svc := NewService(NewFromSnapshot(snap, opts...), opts...)
	if len(snap.Warmup) > 0 {
		svc.RestoreWarmup(snap.Warmup)
	}
	return svc
}

// Class returns the scheme's chordality classification.
func (c *Connector) Class() chordality.Class { return c.class }

// SnapshotVersion returns the format version of the snapshot this
// connector was loaded from, or 0 when it was compiled live.
func (c *Connector) SnapshotVersion() uint16 { return c.snapVersion }

// WriteSnapshot serializes the compiled epoch — frozen CSR view plus
// classification — so a later process can boot it with NewFromSnapshot
// instead of re-running Freeze+Classify.
func (c *Connector) WriteSnapshot(w io.Writer) error {
	return snapshot.Write(w, c.fb, c.class)
}

// SchemeFingerprint identifies the compiled epoch: the sha256 of its
// canonical snapshot encoding (snapshot.EpochFingerprint). Two
// connectors share a fingerprint iff they serve the identical scheme and
// classification — the condition under which cached answers may flow
// between them (warmup restore, Registry epoch-swap carry-over). Lazily
// computed once and cached; the result must not be modified.
func (c *Connector) SchemeFingerprint() []byte {
	c.fpOnce.Do(func() { c.fp = snapshot.EpochFingerprint(c.fb, c.class) })
	return c.fp
}

// Graph returns the mutable bipartite scheme view. For a live-compiled
// connector this is the graph passed to New; for a snapshot-loaded one it
// is thawed from the frozen view on first call (ids, labels and adjacency
// identical to the originally compiled scheme).
func (c *Connector) Graph() *bipartite.Graph {
	c.thawOnce.Do(func() {
		if c.b == nil {
			c.b = c.fb.Thaw()
		}
	})
	return c.b
}

// Frozen returns the compiled scheme view queries are answered on.
func (c *Connector) Frozen() *bipartite.Frozen { return c.fb }

// ExactLimit returns the connector's exact-solver dispatch threshold.
func (c *Connector) ExactLimit() int { return c.cfg.exactLimit }

// Validate applies the boundary checks Connect performs — non-empty,
// in-range, duplicate-free, within the terminal budget, on an allowed
// partition — without running a solver.
func (c *Connector) Validate(terminals []int) error {
	return validateTerminals(c.fb, terminals, c.cfg.maxTerminals, c.cfg.v1Only)
}

// Connect returns a minimal connection over the terminals, dispatched by
// the scheme's class (or forced by WithMethod). It honors ctx deadlines
// inside the solvers and validates the terminals before dispatch.
func (c *Connector) Connect(ctx context.Context, terminals []int, opts ...QueryOption) (Connection, error) {
	return c.connect(ctx, terminals, newQueryConfig(opts))
}

// connect is Connect after option folding.
func (c *Connector) connect(ctx context.Context, terminals []int, q queryConfig) (Connection, error) {
	if err := c.Validate(terminals); err != nil {
		return Connection{}, err
	}
	return c.connectValidated(ctx, terminals, q)
}

// connectValidated is connect minus the boundary checks — the entry point
// for Service, which validates once itself before consulting the cache.
func (c *Connector) connectValidated(ctx context.Context, terminals []int, q queryConfig) (Connection, error) {
	return c.connectShared(ctx, terminals, q, nil)
}

// connectShared is connectValidated with precomputed batch-planner work
// threaded through to the solvers (sh may be nil). Answers are identical
// with or without sh; the Shared only removes repeated BFS floods.
func (c *Connector) connectShared(ctx context.Context, terminals []int, q queryConfig, sh *steiner.Shared) (Connection, error) {
	if err := ctx.Err(); err != nil {
		return Connection{}, err
	}
	conn, err := c.dispatch(ctx, terminals, q, sh)
	if err != nil {
		return Connection{}, err
	}
	if q.interpLimit > 0 {
		interps, err := c.interpretations(ctx, terminals, q.maxAux, q.interpLimit)
		if err != nil {
			return Connection{}, err
		}
		conn.Interps = interps
	}
	return conn, nil
}

// resolveMethod folds MethodAuto down to the concrete solver the
// classification selects for this terminal count — shared by dispatch and
// the batch planner (which must predict the solver to know whether
// precomputed distance rows will be used).
func (c *Connector) resolveMethod(q queryConfig, nTerminals int) Method {
	m := q.method
	if m != MethodAuto {
		return m
	}
	exactLimit := q.exactLimit
	if exactLimit <= 0 {
		exactLimit = c.cfg.exactLimit
	}
	// Clamp to the solver's hard cap so a generous WithExactLimit keeps
	// its contract: queries the exact solver would refuse fall back to
	// the heuristic instead of failing with ErrTooManyTerminals.
	if exactLimit > steiner.ExactTerminalLimit {
		exactLimit = steiner.ExactTerminalLimit
	}
	switch {
	case c.class.Chordal62:
		return MethodAlgorithm2
	case c.class.AlphaV1():
		return MethodAlgorithm1
	case nTerminals <= exactLimit:
		return MethodExact
	default:
		return MethodHeuristic
	}
}

// dispatch picks the solver — by classification for MethodAuto, as forced
// otherwise — and stamps the guarantee flags the scheme's class actually
// supports (a forced method never claims an optimality the class does not
// prove). sh, when non-nil, supplies precomputed batch work to the solvers.
func (c *Connector) dispatch(ctx context.Context, terminals []int, q queryConfig, sh *steiner.Shared) (Connection, error) {
	switch m := c.resolveMethod(q, len(terminals)); m {
	case MethodAlgorithm2:
		tree, err := steiner.Algorithm2FrozenShared(ctx, c.fb.G(), terminals, sh)
		if err != nil {
			return Connection{}, err
		}
		conn := Connection{Tree: tree, Method: MethodAlgorithm2, Optimal: c.class.Chordal62}
		if c.class.Chordal62 {
			// A node-minimum tree need not minimize the V2 count. Since
			// (6,2)-chordal ⟹ (6,1)-chordal ⟹ V1-chordal ∧ V1-conformal
			// (Corollary 2), Algorithm 1 also applies here: use it to certify
			// (or refute) V2-minimality of the Theorem 5 tree.
			if t1, err1 := steiner.Algorithm1FrozenShared(ctx, c.fb, terminals, sh); err1 == nil {
				conn.V2Optimal = steiner.V2CountFrozen(c.fb, tree) == steiner.V2CountFrozen(c.fb, t1)
			} else if err := ctx.Err(); err != nil {
				return Connection{}, err
			}
			conn.Rationale = "(6,2)-chordal scheme: every nonredundant cover is minimum (Theorem 5)"
		} else {
			conn.Rationale = "forced algorithm-2: single-pass elimination without the (6,2)-chordal minimality guarantee"
		}
		return conn, nil
	case MethodAlgorithm1:
		tree, err := steiner.Algorithm1FrozenShared(ctx, c.fb, terminals, sh)
		if err != nil {
			return Connection{}, err
		}
		conn := Connection{Tree: tree, Method: MethodAlgorithm1, V2Optimal: c.class.AlphaV1()}
		if c.class.AlphaV1() {
			conn.Rationale = "V1-chordal, V1-conformal scheme (alpha-acyclic H¹): minimal number of relations via the Lemma 1 elimination ordering (Theorem 3); total minimality is NP-complete here (Theorem 2)"
		} else {
			conn.Rationale = "forced algorithm-1 on the terminals' alpha-acyclic component, without the scheme-wide Theorem 3 guarantee"
		}
		return conn, nil
	case MethodExact:
		tree, err := steiner.ExactFrozenShared(ctx, c.fb.G(), terminals, sh)
		if err != nil {
			if errors.Is(err, steiner.ErrTooManyTerminals) {
				return Connection{}, fmt.Errorf("%w: %d terminals exceed the exact solver's hard limit of %d",
					ErrTooManyTerminals, len(terminals), steiner.ExactTerminalLimit)
			}
			return Connection{}, err
		}
		return Connection{
			Tree: tree, Method: MethodExact, Optimal: true,
			Rationale: fmt.Sprintf("no chordality guarantee: exact search over %d terminals (exponential, Theorem 2 forbids better in general)", len(terminals)),
		}, nil
	case MethodHeuristic:
		tree, err := steiner.ApproximateFrozenShared(ctx, c.fb.G(), terminals, sh)
		if err != nil {
			return Connection{}, err
		}
		return Connection{
			Tree: tree, Method: MethodHeuristic,
			Rationale: "no chordality guarantee and too many terminals for exact search: metric-closure 2-approximation",
		}, nil
	default:
		return Connection{}, fmt.Errorf("core: unknown method %v", m)
	}
}

// Interpretation is one candidate connection in a ranked enumeration:
// a nonredundant cover of the query with its auxiliary (non-terminal)
// objects.
type Interpretation struct {
	Nodes     intset.Set
	Auxiliary intset.Set // Nodes minus the terminals
}

// Interpretations enumerates connections over the terminals ranked by the
// number of auxiliary objects — the paper's interactive-disambiguation
// order, where the minimal interpretation is proposed first. It lists
// nonredundant covers with at most maxAux auxiliary nodes, up to limit
// results, smallest first (ties broken canonically).
//
// The enumeration (steiner.RankedCovers) is exponential in maxAux,
// matching the interactive use-case of schema-sized graphs; ctx bounds it,
// and the terminals are validated at the boundary like Connect's.
func (c *Connector) Interpretations(ctx context.Context, terminals []int, maxAux, limit int) ([]Interpretation, error) {
	if err := c.Validate(terminals); err != nil {
		return nil, err
	}
	return c.interpretations(ctx, terminals, maxAux, limit)
}

func (c *Connector) interpretations(ctx context.Context, terminals []int, maxAux, limit int) ([]Interpretation, error) {
	p := intset.FromSlice(terminals)
	covers, err := steiner.RankedCovers(ctx, c.Graph().G(), terminals, maxAux, limit)
	if err != nil {
		return nil, err
	}
	out := make([]Interpretation, len(covers))
	for i, sel := range covers {
		out[i] = Interpretation{Nodes: sel, Auxiliary: sel.Diff(p)}
	}
	return out, nil
}

// Describe renders the classification for humans (CLI output).
func (c *Connector) Describe() string {
	cl := c.class
	s := "scheme classification:\n"
	row := func(name string, v bool) string {
		mark := "no"
		if v {
			mark = "yes"
		}
		return fmt.Sprintf("  %-28s %s\n", name, mark)
	}
	s += row("(4,1)-chordal (acyclic)", cl.Chordal41)
	s += row("(6,2)-chordal", cl.Chordal62)
	s += row("(6,1)-chordal", cl.Chordal61)
	s += row("V1-chordal", cl.V1Chordal)
	s += row("V1-conformal", cl.V1Conformal)
	s += row("V2-chordal", cl.V2Chordal)
	s += row("V2-conformal", cl.V2Conformal)
	switch {
	case cl.Chordal62:
		s += "  => Steiner trees solvable exactly in polynomial time (Theorem 5)\n"
	case cl.AlphaV1():
		s += "  => pseudo-Steiner w.r.t. V2 polynomial (Theorem 3); Steiner NP-complete (Theorem 2)\n"
	default:
		s += "  => no polynomial guarantee from the paper's taxonomy\n"
	}
	return s
}
