package core

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/bipartite"
	"repro/internal/snapshot"
)

// Registry is a named, multi-tenant catalog of compiled schemes: one
// process serves connection queries over many conceptual schemes, looked
// up by name per query. Updates are atomic compile-and-swap — Set compiles
// the new scheme (freeze + classify, the expensive part) outside the lock,
// then swaps the catalog pointer under it. The swap is copy-on-write at
// the scheme granularity: a query that resolved its Service before the
// swap finishes on the old frozen epoch (immutable, so never torn), while
// every later lookup sees the new one. Readers never block on a compile.
//
// All methods are safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*registryEntry
	// epochs counts Sets per name monotonically and survives Drop, so a
	// caller polling Epoch never sees the counter restart across a
	// drop-and-reinstall.
	epochs map[string]uint64
}

// registryEntry pairs a compiled scheme with its swap epoch and how the
// epoch came to be ("compiled", or "snapshot-v<N>" for a persisted epoch
// revived by LoadSnapshot).
type registryEntry struct {
	svc    *Service
	epoch  uint64
	source string
}

// SourceCompiled is the Source of an epoch installed by Set (a live
// Freeze+Classify compile).
const SourceCompiled = "compiled"

// SourceSnapshot is the Source of an epoch revived from a snapshot of the
// given format version.
func SourceSnapshot(version uint16) string {
	return fmt.Sprintf("snapshot-v%d", version)
}

// NewRegistry returns an empty catalog.
func NewRegistry() *Registry {
	return &Registry{
		entries: make(map[string]*registryEntry),
		epochs:  make(map[string]uint64),
	}
}

// Set compiles b (with opts, as Open would) and installs it under name,
// replacing any previous scheme of that name. It returns the new Service.
// The compile runs before the catalog lock is taken, so concurrent readers
// of the old epoch are never stalled by an update.
func (r *Registry) Set(name string, b *bipartite.Graph, opts ...Option) *Service {
	svc := Open(b, opts...)
	r.Swap(name, svc, SourceCompiled)
	return svc
}

// Swap installs an already-built Service under name — the one place the
// catalog pointer changes, shared by Set, LoadSnapshot and callers (the
// HTTP admin surface) that build the Service themselves. It returns the
// epoch the install landed at, read atomically with the swap, so the
// caller can attribute its own install even when concurrent updates race
// on the same name (a Get-then-Epoch readback could straddle a later
// swap). source should be SourceCompiled or SourceSnapshot(version).
func (r *Registry) Swap(name string, svc *Service, source string) uint64 {
	// Carry the outgoing epoch's settled answers into the incoming
	// service before publishing it, so a reinstall of the identical
	// scheme (same fingerprint — WarmFrom verifies) does not restart the
	// cache cold. Runs before the catalog lock is taken: the copy walks
	// the old cache's published indexes and never stalls readers, and a
	// racing swap on the same name at worst warms from an epoch that
	// loses the race — entries are revalidated either way.
	if prev, ok := r.Get(name); ok {
		svc.WarmFrom(prev)
	}
	r.mu.Lock()
	r.epochs[name]++
	epoch := r.epochs[name]
	r.entries[name] = &registryEntry{svc: svc, epoch: epoch, source: source}
	r.mu.Unlock()
	return epoch
}

// LoadSnapshot decodes a persisted compiled epoch and installs it under
// name with the same atomic swap semantics as Set — in-flight queries
// finish on the old epoch, later lookups see the revived one — but with
// zero recompilation: the expensive Freeze+Classify already happened in
// whatever process wrote the snapshot. The installed entry is stamped with
// the snapshot's format version (see Source). Decode failures are typed
// (snapshot.ErrNotSnapshot, ErrUnsupportedVersion, ErrChecksum,
// ErrCorrupt) and leave the catalog unchanged.
func (r *Registry) LoadSnapshot(name string, data []byte, opts ...Option) (*Service, error) {
	snap, err := snapshot.Decode(data)
	if err != nil {
		return nil, err
	}
	svc := OpenSnapshot(snap, opts...)
	r.Swap(name, svc, SourceSnapshot(snap.Version))
	return svc, nil
}

// SaveSnapshot serializes the named scheme's current epoch to w, so a
// later process (or another Registry, via LoadSnapshot) can boot it
// without recompiling. Unknown names return ErrUnknownScheme.
func (r *Registry) SaveSnapshot(name string, w io.Writer) error {
	svc, ok := r.Get(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownScheme, name)
	}
	return svc.SaveSnapshot(w)
}

// Source reports how the named scheme's current epoch was produced:
// SourceCompiled for a live compile, "snapshot-v<N>" for an epoch revived
// from a format-version-N snapshot, "" when the name is not registered.
func (r *Registry) Source(name string) string {
	_, _, source, _ := r.Entry(name)
	return source
}

// Entry returns the current Service, epoch and source for name in one
// atomic read — use it when the three must describe the same install (a
// Lookup-then-Source pair can straddle a concurrent swap).
func (r *Registry) Entry(name string) (svc *Service, epoch uint64, source string, ok bool) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, 0, "", false
	}
	return e.svc, e.epoch, e.source, true
}

// Get returns the current Service for name. The returned Service remains
// fully usable even after a later Set replaces it (the old frozen epoch
// stays immutable); callers that want the newest epoch per query should
// use Registry.Connect instead of holding a Service.
func (r *Registry) Get(name string) (*Service, bool) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return e.svc, true
}

// Lookup returns the current Service for name together with the epoch it
// was installed at, read atomically with respect to Set/Drop — use it when
// an answer must be attributed to the compile that produced it (Get then
// Epoch can straddle a concurrent swap).
func (r *Registry) Lookup(name string) (*Service, uint64, bool) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, 0, false
	}
	return e.svc, e.epoch, true
}

// Epoch returns how many times name has been set (1 for the initial
// install, monotonic across Drop/reinstall), or 0 when it is not
// currently registered.
func (r *Registry) Epoch(name string) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if e, ok := r.entries[name]; ok {
		return e.epoch
	}
	return 0
}

// Drop removes name from the catalog and reports whether it was present.
// In-flight queries on the dropped scheme finish normally.
func (r *Registry) Drop(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.entries[name]
	delete(r.entries, name)
	return ok
}

// Names lists the registered scheme names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.entries))
	for name := range r.entries {
		out = append(out, name)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len returns the number of registered schemes.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Connect answers one query against the named scheme's current epoch,
// with the same contract as Service.Connect. Unknown names return
// ErrUnknownScheme.
func (r *Registry) Connect(ctx context.Context, scheme string, terminals []int, opts ...QueryOption) (Connection, error) {
	svc, ok := r.Get(scheme)
	if !ok {
		return Connection{}, fmt.Errorf("%w: %q", ErrUnknownScheme, scheme)
	}
	return svc.Connect(ctx, terminals, opts...)
}
