package core_test

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/fixtures"
	"repro/internal/gen"
	"repro/internal/reference"
	"repro/internal/steiner"
)

func TestDispatchAlgorithm2(t *testing.T) {
	b := fixtures.Fig3b() // (6,2)-chordal
	c := core.New(b)
	if !c.Class().Chordal62 {
		t.Fatal("Fig3b should classify (6,2)-chordal")
	}
	terms := b.G().IDs("A", "C")
	conn, err := c.Connect(context.Background(), terms)
	if err != nil {
		t.Fatal(err)
	}
	if conn.Method != core.MethodAlgorithm2 || !conn.Optimal {
		t.Errorf("dispatch = %v optimal=%v", conn.Method, conn.Optimal)
	}
	if got, want := conn.Tree.Nodes.Len(), reference.SteinerMinimumNodes(b.G(), terms); got != want {
		t.Errorf("size %d, want %d", got, want)
	}
}

func TestDispatchAlgorithm1(t *testing.T) {
	b := fixtures.Fig2() // alpha-acyclic H1 but not (6,2)-chordal
	c := core.New(b)
	if c.Class().Chordal62 || !c.Class().AlphaV1() {
		t.Fatalf("Fig2 classification wrong: %+v", c.Class())
	}
	terms := b.G().IDs("A", "B", "C")
	conn, err := c.Connect(context.Background(), terms)
	if err != nil {
		t.Fatal(err)
	}
	if conn.Method != core.MethodAlgorithm1 || !conn.V2Optimal {
		t.Errorf("dispatch = %v v2opt=%v", conn.Method, conn.V2Optimal)
	}
	if got, want := steiner.V2Count(b, conn.Tree), reference.MinimumV2Count(b, terms); got != want {
		t.Errorf("V2 count %d, want %d", got, want)
	}
}

func TestDispatchExactAndHeuristic(t *testing.T) {
	b := gen.GridBipartite(3, 4) // no chordality guarantees
	c := core.New(b)
	if c.Class().Chordal62 || c.Class().AlphaV1() {
		t.Fatalf("grid classification wrong: %+v", c.Class())
	}
	terms := []int{0, 11}
	conn, err := c.Connect(context.Background(), terms)
	if err != nil {
		t.Fatal(err)
	}
	if conn.Method != core.MethodExact || !conn.Optimal {
		t.Errorf("dispatch = %v", conn.Method)
	}
	// Force the heuristic by lowering the exact limit for one query.
	conn, err = c.Connect(context.Background(), terms, core.WithQueryExactLimit(1))
	if err != nil {
		t.Fatal(err)
	}
	if conn.Method != core.MethodHeuristic {
		t.Errorf("dispatch = %v, want heuristic", conn.Method)
	}
	if err := conn.Tree.Validate(b.G(), terms); err != nil {
		t.Error(err)
	}
}

// TestExactLimitClampedToSolverCap pins WithExactLimit's contract: a limit
// above the exact solver's hard cap must not turn large auto-dispatched
// queries into ErrTooManyTerminals — they fall back to the heuristic.
func TestExactLimitClampedToSolverCap(t *testing.T) {
	b := gen.GridBipartite(5, 5)
	c := core.New(b, core.WithExactLimit(steiner.ExactTerminalLimit+5))
	terms := make([]int, steiner.ExactTerminalLimit+1)
	for i := range terms {
		terms[i] = i
	}
	conn, err := c.Connect(context.Background(), terms)
	if err != nil {
		t.Fatalf("auto dispatch above the solver cap should fall back, got %v", err)
	}
	if conn.Method != core.MethodHeuristic {
		t.Errorf("method = %v, want heuristic", conn.Method)
	}
	// Forcing the exact method still surfaces the typed error.
	if _, err := c.Connect(context.Background(), terms, core.WithMethod(core.MethodExact)); !errors.Is(err, core.ErrTooManyTerminals) {
		t.Errorf("forced exact above the cap: %v", err)
	}
}

func TestConnectErrors(t *testing.T) {
	b := bipartite.New()
	a := b.AddV1("a")
	w := b.AddV2("w")
	b.AddEdge(a, w)
	iso := b.AddV1("iso")
	c := core.New(b)
	if _, err := c.Connect(context.Background(), []int{a, iso}); err == nil {
		t.Error("disconnected terminals accepted")
	}
}

func TestInterpretationsRankedByAuxiliaries(t *testing.T) {
	// Two routes between A and B: direct via hub H (0 auxiliaries beyond
	// H... the hub is auxiliary too) and a long route; the ranking must
	// list the smaller interpretation first.
	b := bipartite.New()
	a := b.AddV1("A")
	bb := b.AddV1("B")
	x := b.AddV1("X")
	h := b.AddV2("H")
	w1 := b.AddV2("W1")
	w2 := b.AddV2("W2")
	for _, arc := range [][2]int{{a, h}, {bb, h}, {a, w1}, {x, w1}, {x, w2}, {bb, w2}} {
		b.AddEdge(arc[0], arc[1])
	}
	c := core.New(b)
	interps, err := c.Interpretations(context.Background(), []int{a, bb}, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(interps) < 2 {
		t.Fatalf("interpretations = %v", interps)
	}
	if interps[0].Auxiliary.Len() != 1 || !interps[0].Nodes.Contains(h) {
		t.Errorf("first interpretation should be the hub route: %v", interps[0])
	}
	if interps[1].Auxiliary.Len() != 3 {
		t.Errorf("second interpretation should use 3 auxiliaries: %v", interps[1])
	}
	for _, in := range interps {
		if !reference.IsNonredundantCover(b.G(), in.Nodes, []int{a, bb}) {
			t.Errorf("interpretation %v is not a nonredundant cover", in)
		}
	}
}

func TestInterpretationsAgreeWithOptimum(t *testing.T) {
	r := rand.New(rand.NewSource(211))
	for iter := 0; iter < 60; iter++ {
		b := gen.RandomConnectedBipartite(r, 2+r.Intn(3), 2+r.Intn(3), 0.4)
		g := b.G()
		terms := []int{0, g.N() - 1}
		c := core.New(b)
		interps, err := c.Interpretations(context.Background(), terms, g.N(), 5)
		if err != nil {
			t.Fatal(err)
		}
		opt := reference.SteinerMinimumNodes(g, terms)
		if opt == -1 {
			if len(interps) != 0 {
				t.Fatalf("interpretations on disconnected terminals: %v", interps)
			}
			continue
		}
		if len(interps) == 0 {
			t.Fatalf("no interpretations but optimum %d exists on %v", opt, g)
		}
		if got := interps[0].Nodes.Len(); got != opt {
			t.Fatalf("first interpretation has %d nodes, optimum %d on %v", got, opt, g)
		}
	}
}

func TestDescribe(t *testing.T) {
	c := core.New(fixtures.Fig3b())
	out := c.Describe()
	if !strings.Contains(out, "(6,2)-chordal") || !strings.Contains(out, "Theorem 5") {
		t.Errorf("Describe output unexpected:\n%s", out)
	}
	c = core.New(gen.GridBipartite(3, 3))
	if !strings.Contains(c.Describe(), "no polynomial guarantee") {
		t.Error("grid Describe should mention missing guarantee")
	}
}

func TestMethodString(t *testing.T) {
	if core.MethodAlgorithm1.String() != "algorithm-1" || core.Method(9).String() != "Method(9)" {
		t.Error("Method.String wrong")
	}
}

func TestGraphAccessorAndMethodNames(t *testing.T) {
	b := fixtures.Fig2()
	c := core.New(b)
	if c.Graph() != b {
		t.Error("Graph() should return the classified scheme")
	}
	for m, want := range map[core.Method]string{
		core.MethodAlgorithm2: "algorithm-2",
		core.MethodExact:      "exact",
		core.MethodHeuristic:  "heuristic",
	} {
		if m.String() != want {
			t.Errorf("Method %d = %q, want %q", m, m.String(), want)
		}
	}
}

func TestConnectAlgorithm1ErrorPath(t *testing.T) {
	// An alpha-acyclic-H1 scheme with disconnected terminals must surface
	// the error through the Algorithm 1 branch.
	b := fixtures.Fig2()
	iso := b.AddV1("ISO")
	c := core.New(b)
	if !c.Class().AlphaV1() {
		t.Skip("classification changed; not the Algorithm 1 branch")
	}
	if _, err := c.Connect(context.Background(), []int{0, iso}); err == nil {
		t.Error("disconnected terminals accepted on Algorithm 1 branch")
	}
}

func TestDescribeAlgorithm1Branch(t *testing.T) {
	// A scheme that is AlphaV1 but not (6,2)-chordal gets the Theorem 3
	// line in Describe.
	c := core.New(fixtures.Fig2())
	if !strings.Contains(c.Describe(), "Theorem 3") {
		t.Errorf("Describe missing Theorem 3 line:\n%s", c.Describe())
	}
}
