package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/intset"
	"repro/internal/metrics"
	"repro/internal/snapshot"
	"repro/internal/steiner"
	"repro/internal/trace"
)

// Service serves minimal-connection queries over one compiled scheme to
// concurrent callers. It adds two things to a Connector:
//
//   - a sharded LRU answer cache (internal/cache) keyed on the canonical
//     terminal set (intset.Key) plus the per-query options that change the
//     answer: the scheme is frozen at construction, so an answer never goes
//     stale and repeated or overlapping workloads — the paper's interactive
//     disambiguation loop re-asks mostly-identical queries — become cache
//     hits instead of Steiner reruns. Each shard has its own lock, so a
//     warm high-QPS path does not serialize every hit on one mutex; with
//     WithCacheShards(1) the cache is exactly the classic single-lock LRU;
//   - ConnectBatch, which fans a batch out over a bounded worker pool.
//
// Identical queries arriving concurrently are deduplicated in flight: one
// goroutine computes, the rest wait on the same cache entry (or return
// early when their own context expires first). Cancellation errors are
// never cached — an entry whose computation died of its context's deadline
// is evicted so the next caller retries with its own budget. All methods
// are safe for concurrent use.
type Service struct {
	c       *Connector
	workers int

	// cache maps option-fingerprinted canonical terminal sets to
	// *cacheEntry values. Shard selection hashes the whole key, so
	// concurrent lookups of distinct queries take distinct locks while
	// concurrent lookups of the same query still meet on one shard — which
	// is what makes the in-flight dedup below work.
	cache *cache.Cache[*cacheEntry]

	// Counters are atomics, not lock-guarded fields: Stats() is a
	// monitoring endpoint (/v1/stats) polled while queries are in flight,
	// so reads must neither tear nor contend with the cache locks, and the
	// bypass path can count itself without taking any lock at all.
	// Evictions live on the cache itself, aggregated the same way.
	hits     atomic.Uint64
	misses   atomic.Uint64
	bypasses atomic.Uint64
	// removals counts entries deliberately evicted because their outcome
	// must not be cached — cancellation results and panicked computations.
	// It closes the residency algebra (see CacheStats) on those paths:
	// every miss inserts one entry, and every entry leaves either by
	// capacity eviction or by a removal.
	removals atomic.Uint64

	// Planner observability: the size of every non-singleton batch group
	// and the wall time of every lazy Shared build. Owned here (one pair
	// per scheme) and bridged onto /metrics per scheme via
	// Registry.HistogramFunc — see PlannerStats.
	plannerGroupSize *metrics.Histogram
	sharedBuildDur   *metrics.Histogram
}

// cacheEntry is one cached (or in-flight) answer. done is closed once conn
// and err are populated; waiters block on it outside the shard lock. The
// key lives in the cache's own entry; this side carries the payload plus
// the query that produced it (terms, fp) so warmup serialization and
// epoch-swap carry-over can revalidate an entry without parsing keys.
type cacheEntry struct {
	done  chan struct{}
	conn  Connection
	err   error
	terms intset.Set
	fp    string
}

// settledDone is the pre-closed channel shared by every entry installed
// already settled (warmup restore, epoch-swap carry): waiters never block
// on it.
var settledDone = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// DefaultCacheSize is the answer-cache capacity used when NewService is
// not given a positive WithCacheSize. The capacity is split across the
// cache shards by ceiling division with a floor of one entry per shard
// (see internal/cache), so the effective capacity is never silently below
// the request.
const DefaultCacheSize = 1024

// NewService wraps a Connector for concurrent serving. Recognized options:
// WithWorkers bounds the ConnectBatch pool (default GOMAXPROCS),
// WithCacheSize bounds the answer cache (default DefaultCacheSize),
// WithCacheShards sets the cache's lock-shard count (default GOMAXPROCS
// rounded up to a power of two, at most 64).
func NewService(c *Connector, opts ...Option) *Service {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers <= 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	if cfg.cacheSize <= 0 {
		cfg.cacheSize = DefaultCacheSize
	}
	return &Service{
		c:       c,
		workers: cfg.workers,
		cache:   cache.New[*cacheEntry](cfg.cacheSize, cfg.cacheShards),
		// Group sizes are small integers: powers of two up to 256 resolve
		// "pairs" from "whole-batch coalescence". Build durations use the
		// standard latency layout.
		plannerGroupSize: metrics.NewHistogram(metrics.ExponentialBounds(2, 2, 8)),
		sharedBuildDur:   metrics.NewHistogram(metrics.DefLatencyBounds()),
	}
}

// PlannerStats returns the batch-planner histograms: the distribution of
// non-singleton group sizes (in queries) and of lazy Shared-build wall
// times (in seconds). Both are live instruments — /metrics renders them
// at scrape time.
func (s *Service) PlannerStats() (groupSize, sharedBuild *metrics.Histogram) {
	return s.plannerGroupSize, s.sharedBuildDur
}

// Connector returns the wrapped Connector.
func (s *Service) Connector() *Connector { return s.c }

// SaveSnapshot serializes the service's compiled epoch (frozen CSR view +
// classification) to w — see Connector.WriteSnapshot. The answer cache is
// deliberately not persisted: it is a property of this process's traffic,
// not of the epoch.
func (s *Service) SaveSnapshot(w io.Writer) error { return s.c.WriteSnapshot(w) }

// Connect answers one minimal-connection query through the cache. The
// cache key combines the canonical terminal set with the answer-changing
// query options, so a WithMethod or WithInterpretations variant never
// collides with the default answer. WithCacheBypass skips the cache in
// both directions.
func (s *Service) Connect(ctx context.Context, terminals []int, opts ...QueryOption) (Connection, error) {
	return s.connectWith(ctx, terminals, newQueryConfig(opts), nil)
}

// connectWith is Connect after option folding, with an optional provider of
// batch-planner shared work. The provider is consulted only when a query
// actually computes (cache miss or bypass), so a warm batch never builds
// its Shared at all.
func (s *Service) connectWith(ctx context.Context, terminals []int, q queryConfig, shared func() *steiner.Shared) (Connection, error) {
	tr := trace.FromContext(ctx)
	compute := func(ctx context.Context) (Connection, error) {
		// The planner's lazy Shared build traces itself (planner.go), so
		// the solve span covers exactly the dispatch + solver run.
		var sh *steiner.Shared
		if shared != nil {
			sh = shared()
		}
		sp := tr.StartSpan("solve")
		conn, err := s.c.connectShared(ctx, terminals, q, sh)
		if err == nil {
			sp.Annotate("method", conn.Method.String())
		}
		sp.End()
		return conn, err
	}
	// Validate before touching the cache: invalid queries are cheap to
	// reject and must not occupy cache capacity.
	if err := s.c.Validate(terminals); err != nil {
		return Connection{}, err
	}
	if err := ctx.Err(); err != nil {
		return Connection{}, err
	}
	if q.bypassCache {
		s.bypasses.Add(1)
		return compute(ctx)
	}
	fp := q.fingerprint()
	terms := intset.FromSlice(terminals)
	key := fp + "#" + terms.Key()
	// The cache span covers lookup and in-flight waiting, never the
	// compute itself (that is the solve span), so a trace's phases tile
	// the request without double counting. A retry after observing a
	// cancellation outcome stays inside the same span.
	csp := tr.StartSpan("cache")
	if tr != nil {
		csp.AnnotateInt("shard", int64(s.cache.ShardIndex(key)))
	}
	for {
		ent, hit := s.cache.GetOrAdd(key, func() *cacheEntry {
			return &cacheEntry{done: make(chan struct{}), terms: terms, fp: fp}
		})
		if hit {
			s.hits.Add(1)
			outcome := "hit"
			if tr != nil {
				// Distinguish a settled hit from in-flight dedup without
				// perturbing the traceless hot path: one extra
				// non-blocking poll of done, only when tracing.
				select {
				case <-ent.done:
				default:
					outcome = "inflight"
				}
			}
			select {
			case <-ent.done:
			case <-ctx.Done():
				// The computing goroutine keeps going on its own context;
				// this caller just stops waiting for it.
				csp.Annotate("outcome", outcome)
				csp.End()
				return Connection{}, ctx.Err()
			}
			if isCtxErr(ent.err) && ctx.Err() == nil {
				// The computation died of the *computing* caller's
				// cancellation, not ours; it evicted the entry before
				// closing done, so retry with this caller's own budget.
				continue
			}
			csp.Annotate("outcome", outcome)
			csp.End()
			return ent.conn, ent.err
		}
		s.misses.Add(1)
		csp.Annotate("outcome", "miss")
		csp.End()

		// Compute outside the shard lock; the Connector is
		// concurrency-safe. Errors are cached too: for a frozen scheme
		// they are as deterministic as answers (e.g. disconnected
		// terminals stay disconnected) — except cancellation, which is a
		// property of this call's context, not of the query, and is
		// uncached below.
		completed := false
		defer func() {
			if completed {
				return
			}
			// Connect panicked. Evict the half-built entry so the key is
			// not poisoned and fail any waiters instead of leaving them
			// blocked on done forever; the panic itself keeps propagating
			// to this caller.
			ent.err = fmt.Errorf("core: Connect panicked for cache key %q", key)
			if s.cache.Remove(key, ent) {
				s.removals.Add(1)
			}
			close(ent.done)
		}()
		start := time.Now()
		ent.conn, ent.err = compute(ctx)
		completed = true
		if isCtxErr(ent.err) {
			// Evict before closing done: waiters observing a cancellation
			// outcome must find the key absent when they retry. Remove is
			// conditional on entry identity, so a concurrent capacity
			// eviction plus re-insert is never clobbered.
			if s.cache.Remove(key, ent) {
				s.removals.Add(1)
			}
		} else if ent.err == nil {
			// Record what this answer cost to compute — eviction uses it to
			// prefer dropping cheap-to-recompute entries, and a persisted
			// warmup carries it forward. Identity-conditional like Remove,
			// so a concurrent eviction + re-insert never inherits our cost.
			s.cache.SetCost(key, ent, time.Since(start).Nanoseconds())
		}
		close(ent.done)
		return ent.conn, ent.err
	}
}

// isCtxErr reports whether err is a cancellation outcome.
func isCtxErr(err error) bool {
	return err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// BatchResult is one answer of ConnectBatch, at the index of its query.
type BatchResult struct {
	Terminals []int
	Conn      Connection
	Err       error
}

// ConnectBatch answers all queries concurrently on at most workers
// goroutines and returns the results in query order; opts apply to every
// query of the batch. Duplicate terminal sets inside one batch are
// computed once via the cache. Queries that share terminals are grouped by
// the batch planner (planner.go) so the group's component masks and
// distance rows are flooded once and read by every member — the answers
// are bit-for-bit those of independent Connect calls. Once ctx is done the
// remaining queries fail fast with its error.
func (s *Service) ConnectBatch(ctx context.Context, queries [][]int, opts ...QueryOption) []BatchResult {
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	q := newQueryConfig(opts)
	plan := planBatch(s.c, queries, q)
	if plan != nil {
		seen := make(map[*batchGroup]bool)
		for _, g := range plan.groups {
			if g != nil && !seen[g] {
				seen[g] = true
				s.plannerGroupSize.Observe(float64(g.queries))
			}
		}
	}
	workers := s.workers
	if workers > len(queries) {
		workers = len(queries)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				var shared func() *steiner.Shared
				if g := plan.group(i); g != nil {
					shared = func() *steiner.Shared { return g.shared(ctx, s) }
				}
				conn, err := s.connectWith(ctx, queries[i], q, shared)
				out[i] = BatchResult{Terminals: queries[i], Conn: conn, Err: err}
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// CacheStats is a point-in-time snapshot of the answer cache. The
// counters satisfy an exact reconciliation algebra (asserted by the test
// harness and exported on /metrics): every cache-path request counts as
// exactly one of Hits/Misses/Bypasses; every miss and every warm fill
// inserts one entry; and every entry leaves by capacity eviction
// (Evictions) or deliberate removal (Removals) — so
// Entries == Misses + WarmFills − Evictions − Removals. The cost ledger
// satisfies its own identity:
// CostResidentNanos == CostAddedNanos − CostEvictedNanos − CostRemovedNanos.
type CacheStats struct {
	Hits      uint64 // lookups that found an entry (including in-flight)
	Misses    uint64 // lookups that started a computation
	Evictions uint64 // entries dropped by capacity pressure, all shards
	Bypasses  uint64 // queries answered around the cache (WithCacheBypass)
	// Removals counts entries deliberately evicted because their outcome
	// must not be cached: computations that ended in a cancellation error
	// (the next caller retries with its own budget) or in a panic (the
	// key must not stay poisoned).
	Removals uint64
	// WarmFills counts entries installed without a miss: restored from a
	// snapshot's warmup section at boot, or carried over from the previous
	// epoch on a Registry swap.
	WarmFills uint64
	Entries   int // entries currently resident (including in-flight)
	Shards    int // lock shards (WithCacheShards; always a power of two)
	Capacity  int // effective capacity: per-shard capacity × Shards
	// ShardEntries is the per-shard resident-entry count, in shard order
	// (sums to Entries). Uniform traffic should fill shards about evenly;
	// persistent skew means the key space is hashing badly.
	ShardEntries []int
	// The cost ledger, in nanoseconds of solver wall time: Added is
	// recorded at fill, Evicted/Removed leave with their entries, Resident
	// is what the cache currently holds, and Saved accumulates the
	// recorded cost of every hit — solver time turned into map lookups.
	CostAddedNanos    uint64
	CostEvictedNanos  uint64
	CostRemovedNanos  uint64
	CostResidentNanos uint64
	CostSavedNanos    uint64
}

// ShardStats returns the answer cache's per-shard hit/miss/eviction
// counters and occupancy, in shard order — the source for the per-shard
// /metrics series. Shard hits sum to Stats().Hits and shard misses to
// Stats().Misses: Service counts a hit exactly when the key's shard does
// (including an in-flight-dedup retry, which runs one more lookup at both
// levels). Bypasses never touch the cache, so they have no shard.
func (s *Service) ShardStats() []cache.ShardStat { return s.cache.ShardStats() }

// Stats returns current cache counters. A hit counts any lookup that found
// an entry, including one still in flight. Counters are read atomically
// and occupancy comes off the shards' published indexes, so a monitoring
// poll never takes a lock at all — scrapes cannot perturb the serving
// path.
func (s *Service) Stats() CacheStats {
	occ := s.cache.Occupancy()
	entries := 0
	for _, n := range occ {
		entries += n
	}
	costs := s.cache.CostStats()
	return CacheStats{
		Hits:              s.hits.Load(),
		Misses:            s.misses.Load(),
		Evictions:         s.cache.Evictions(),
		Bypasses:          s.bypasses.Load(),
		Removals:          s.removals.Load(),
		WarmFills:         s.cache.WarmFills(),
		Entries:           entries,
		Shards:            s.cache.Shards(),
		Capacity:          s.cache.Capacity(),
		ShardEntries:      occ,
		CostAddedNanos:    costs.Added,
		CostEvictedNanos:  costs.Evicted,
		CostRemovedNanos:  costs.Removed,
		CostResidentNanos: costs.Resident(),
		CostSavedNanos:    costs.Saved,
	}
}

// warmKey rebuilds the cache key for a warm install — the same
// composition connectWith uses, so a restored entry is hit by exactly
// the query that produced it.
func warmKey(fp string, terms intset.Set) string { return fp + "#" + terms.Key() }

// warmAdd installs an already-settled answer, if its key is absent.
func (s *Service) warmAdd(fp string, terms intset.Set, conn Connection, costNanos int64) bool {
	ent := &cacheEntry{done: settledDone, conn: conn, terms: terms, fp: fp}
	return s.cache.Add(warmKey(fp, terms), ent, costNanos)
}

// RestoreWarmup installs persisted answer-cache entries (a snapshot's
// warmup section, already fingerprint-validated by snapshot.Decode) and
// returns how many it accepted. Every entry is revalidated against this
// service's own configuration — terminals through Connector.Validate,
// the tree through steiner.Tree.Validate — so an entry the current
// options would reject (say, WithV1TerminalsOnly) is skipped, never
// installed. Installed entries are answered bit-for-bit as the original
// solve and count as WarmFills, not Misses.
func (s *Service) RestoreWarmup(entries []snapshot.WarmEntry) int {
	installed := 0
	for _, we := range entries {
		terms := make([]int, len(we.Terminals))
		for i, t := range we.Terminals {
			terms[i] = int(t)
		}
		if s.c.Validate(terms) != nil {
			continue
		}
		nodes := make(intset.Set, len(we.Nodes))
		for i, v := range we.Nodes {
			nodes[i] = int(v)
		}
		var edges []graph.Edge
		if len(we.Edges) > 0 {
			edges = make([]graph.Edge, len(we.Edges))
			for i, e := range we.Edges {
				edges[i] = graph.Edge{U: int(e[0]), V: int(e[1])}
			}
		}
		tree := steiner.Tree{Nodes: nodes, Edges: edges}
		if tree.ValidateFrozen(s.c.fb.G(), terms) != nil {
			continue
		}
		conn := Connection{
			Tree:      tree,
			Method:    Method(we.Method),
			Optimal:   we.Optimal,
			V2Optimal: we.V2Optimal,
			Rationale: we.Rationale,
		}
		if s.warmAdd(we.Fingerprint, intset.Set(terms), conn, we.CostNanos) {
			installed++
		}
	}
	return installed
}

// WarmFrom carries settled answers over from prev's cache — the Registry
// calls it on an epoch swap so a recompile of the same scheme does not
// restart cold. It is a no-op unless both services serve the identical
// compiled epoch (scheme fingerprints equal): on a real scheme change
// every old answer is potentially stale and none may carry. Entries
// still in flight, error outcomes, and queries the new configuration
// rejects are skipped. Returns the number of entries installed.
func (s *Service) WarmFrom(prev *Service) int {
	if prev == nil || prev == s || !bytes.Equal(s.c.SchemeFingerprint(), prev.c.SchemeFingerprint()) {
		return 0
	}
	installed := 0
	prev.cache.Range(func(key string, ent *cacheEntry, costNanos int64) bool {
		select {
		case <-ent.done:
		default:
			return true // in flight: its outcome belongs to the old epoch
		}
		if ent.err != nil || s.c.Validate(ent.terms) != nil {
			return true
		}
		// The settled entry is immutable, so the new cache can share it.
		if s.cache.Add(key, ent, costNanos) {
			installed++
		}
		return true
	})
	return installed
}

// WarmupEntries serializes the cache's settled, persistable answers into
// snapshot warmup entries: in-flight entries, error outcomes and answers
// carrying interpretation lists (whose enumeration is not part of the
// warmup format) are skipped. The result feeds snapshot.EncodeWarm.
func (s *Service) WarmupEntries() []snapshot.WarmEntry {
	var out []snapshot.WarmEntry
	s.cache.Range(func(key string, ent *cacheEntry, costNanos int64) bool {
		select {
		case <-ent.done:
		default:
			return true
		}
		if ent.err != nil || ent.conn.Interps != nil {
			return true
		}
		we := snapshot.WarmEntry{
			Fingerprint: ent.fp,
			Terminals:   int32sOf(ent.terms),
			Method:      uint8(ent.conn.Method),
			Optimal:     ent.conn.Optimal,
			V2Optimal:   ent.conn.V2Optimal,
			CostNanos:   costNanos,
			Rationale:   ent.conn.Rationale,
			Nodes:       int32sOf(ent.conn.Tree.Nodes),
		}
		if n := len(ent.conn.Tree.Edges); n > 0 {
			we.Edges = make([][2]int32, n)
			for i, e := range ent.conn.Tree.Edges {
				we.Edges[i] = [2]int32{int32(e.U), int32(e.V)}
			}
		}
		out = append(out, we)
		return true
	})
	return out
}

// int32sOf narrows a sorted id set for serialization.
func int32sOf(s intset.Set) []int32 {
	out := make([]int32, len(s))
	for i, v := range s {
		out[i] = int32(v)
	}
	return out
}

// SaveWarmSnapshot serializes the compiled epoch plus the current
// settled answer cache as a warm snapshot: a process booting from it
// (OpenSnapshot, Registry.LoadSnapshot) starts with those answers
// resident. The warmup section is fingerprint-bound to this exact epoch,
// so it can never warm a different scheme.
func (s *Service) SaveWarmSnapshot(w io.Writer) error {
	return snapshot.WriteWarm(w, s.c.fb, s.c.class, s.WarmupEntries())
}
