package core

import (
	"container/list"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/intset"
)

// Service serves minimal-connection queries over one compiled scheme to
// concurrent callers. It adds two things to a Connector:
//
//   - an LRU answer cache keyed on the canonical terminal set (intset.Key):
//     the scheme is frozen at construction, so an answer never goes stale
//     and repeated or overlapping workloads — the paper's interactive
//     disambiguation loop re-asks mostly-identical queries — become cache
//     hits instead of Steiner reruns;
//   - ConnectBatch, which fans a batch out over a bounded worker pool.
//
// Identical queries arriving concurrently are deduplicated in flight: one
// goroutine computes, the rest wait on the same cache entry. All methods
// are safe for concurrent use.
type Service struct {
	c        *Connector
	workers  int
	capacity int

	mu     sync.Mutex
	cache  map[string]*list.Element
	order  *list.List // front = most recently used; values are *cacheEntry
	hits   uint64
	misses uint64
}

// cacheEntry is one cached (or in-flight) answer. done is closed once conn
// and err are populated; waiters block on it outside the Service lock.
type cacheEntry struct {
	key  string
	done chan struct{}
	conn Connection
	err  error
}

// DefaultCacheSize is the answer-cache capacity used when NewService is
// given a non-positive one.
const DefaultCacheSize = 1024

// NewService wraps a Connector for concurrent serving. workers bounds the
// ConnectBatch pool (non-positive means GOMAXPROCS); cacheSize bounds the
// answer cache (non-positive means DefaultCacheSize).
func NewService(c *Connector, workers, cacheSize int) *Service {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cacheSize <= 0 {
		cacheSize = DefaultCacheSize
	}
	return &Service{
		c:        c,
		workers:  workers,
		capacity: cacheSize,
		cache:    make(map[string]*list.Element, cacheSize),
		order:    list.New(),
	}
}

// Connector returns the wrapped Connector.
func (s *Service) Connector() *Connector { return s.c }

// Connect answers one minimal-connection query through the cache.
func (s *Service) Connect(terminals []int) (Connection, error) {
	key := intset.FromSlice(terminals).Key()
	s.mu.Lock()
	if e, ok := s.cache[key]; ok {
		s.order.MoveToFront(e)
		s.hits++
		ent := e.Value.(*cacheEntry)
		s.mu.Unlock()
		<-ent.done
		return ent.conn, ent.err
	}
	s.misses++
	ent := &cacheEntry{key: key, done: make(chan struct{})}
	s.cache[key] = s.order.PushFront(ent)
	if s.order.Len() > s.capacity {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.cache, oldest.Value.(*cacheEntry).key)
	}
	s.mu.Unlock()

	// Compute outside the lock; the Connector is concurrency-safe. Errors
	// are cached too: for a frozen scheme they are as deterministic as
	// answers (e.g. disconnected terminals stay disconnected).
	completed := false
	defer func() {
		if completed {
			return
		}
		// Connect panicked (e.g. an out-of-range terminal id). Evict the
		// half-built entry so the key is not poisoned and fail any waiters
		// instead of leaving them blocked on done forever; the panic itself
		// keeps propagating to this caller.
		ent.err = fmt.Errorf("core: Connect panicked for terminal set {%s}", key)
		s.mu.Lock()
		if e, ok := s.cache[key]; ok && e.Value.(*cacheEntry) == ent {
			s.order.Remove(e)
			delete(s.cache, key)
		}
		s.mu.Unlock()
		close(ent.done)
	}()
	ent.conn, ent.err = s.c.Connect(terminals)
	completed = true
	close(ent.done)
	return ent.conn, ent.err
}

// BatchResult is one answer of ConnectBatch, at the index of its query.
type BatchResult struct {
	Terminals []int
	Conn      Connection
	Err       error
}

// ConnectBatch answers all queries concurrently on at most workers
// goroutines and returns the results in query order. Duplicate terminal
// sets inside one batch are computed once via the cache.
func (s *Service) ConnectBatch(queries [][]int) []BatchResult {
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	workers := s.workers
	if workers > len(queries) {
		workers = len(queries)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				conn, err := s.Connect(queries[i])
				out[i] = BatchResult{Terminals: queries[i], Conn: conn, Err: err}
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// CacheStats is a point-in-time snapshot of the answer cache.
type CacheStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
}

// Stats returns current cache counters. A hit counts any lookup that found
// an entry, including one still in flight.
func (s *Service) Stats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return CacheStats{Hits: s.hits, Misses: s.misses, Entries: s.order.Len()}
}
