package core

import (
	"context"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/steiner"
)

// tinyScheme is a two-attribute, one-relation scheme: the cheapest
// possible computation, so these tests exercise the cache bookkeeping and
// not the solver.
func tinyScheme() *bipartite.Graph {
	b := bipartite.New()
	e := b.AddV1("ename")
	f := b.AddV1("floor")
	w := b.AddV2("works")
	b.AddEdge(e, w)
	b.AddEdge(f, w)
	return b
}

// TestPanicPathReconciles drives the one compute path that cannot be
// reached through the public API — a panic inside the computation — by
// handing connectWith a shared-work provider that blows up (the provider
// runs inside the panic-protected compute region). The recovery must
// evict the half-built entry, count it as a removal so the residency
// algebra still reconciles, and leave the key clean for the next caller.
func TestPanicPathReconciles(t *testing.T) {
	svc := NewService(New(tinyScheme()))
	terms := []int{0, 1}

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panicking provider did not propagate")
			}
		}()
		boom := func() *steiner.Shared { panic("injected") }
		_, _ = svc.connectWith(context.Background(), terms, newQueryConfig(nil), boom)
	}()

	st := svc.Stats()
	if st.Misses != 1 || st.Removals != 1 || st.Entries != 0 {
		t.Fatalf("after panic: %+v, want 1 miss, 1 removal, 0 entries", st)
	}
	if st.Hits+st.Misses+st.Bypasses != 1 {
		t.Fatalf("lookup accounting off after panic: %+v", st)
	}
	if uint64(st.Entries) != st.Misses-st.Evictions-st.Removals {
		t.Fatalf("residency accounting off after panic: %+v", st)
	}

	// The key must not stay poisoned: the same query computes fresh.
	if _, err := svc.Connect(context.Background(), terms); err != nil {
		t.Fatalf("query after panic recovery failed: %v", err)
	}
	st = svc.Stats()
	if st.Misses != 2 || st.Entries != 1 || st.Removals != 1 {
		t.Fatalf("after retry: %+v, want 2 misses, 1 entry, 1 removal", st)
	}
}
