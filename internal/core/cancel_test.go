package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

// hardInstance returns a scheme with no polynomial guarantee plus a
// terminal set large enough that the exact Dreyfus–Wagner program would
// grind through millions of subset states — the workload a deadline must
// be able to cut short.
func hardInstance(t *testing.T) (*core.Connector, []int) {
	t.Helper()
	b := gen.GridBipartite(8, 8)
	c := core.New(b, core.WithExactLimit(20))
	if c.Class().Chordal62 || c.Class().AlphaV1() {
		t.Fatal("grid should have no polynomial guarantee")
	}
	terms := make([]int, 0, 16)
	for v := 0; v < b.N() && len(terms) < 16; v += 2 {
		terms = append(terms, v)
	}
	return c, terms
}

// TestConnectExpiredDeadline is the acceptance check of the v2 contract: a
// Connect whose deadline already passed must return
// context.DeadlineExceeded promptly instead of running the full
// exponential search (which would take far longer than the test timeout on
// this instance).
func TestConnectExpiredDeadline(t *testing.T) {
	c, terms := hardInstance(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	start := time.Now()
	_, err := c.Connect(ctx, terms)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("expired deadline took %v to surface", elapsed)
	}
}

// TestConnectMidFlightDeadline arms a deadline short enough to fire inside
// the exact DP and asserts the solver notices it from within its subset
// loop (rather than only at the boundary).
func TestConnectMidFlightDeadline(t *testing.T) {
	c, terms := hardInstance(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()

	start := time.Now()
	_, err := c.Connect(ctx, terms)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("mid-flight deadline took %v to surface", elapsed)
	}
}

// TestConnectCancel asserts explicit cancellation surfaces as
// context.Canceled through the same path.
func TestConnectCancel(t *testing.T) {
	c, terms := hardInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Connect(ctx, terms); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestServiceDoesNotCacheDeadlineErrors asserts a cancellation outcome is
// not served to later callers with healthy contexts.
func TestServiceDoesNotCacheDeadlineErrors(t *testing.T) {
	c, terms := hardInstance(t)
	svc := core.NewService(c)

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := svc.Connect(expired, terms); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if st := svc.Stats(); st.Entries != 0 {
		t.Fatalf("deadline error left a cache entry: %+v", st)
	}
	// A healthy caller on a *small* variant of the query must compute, not
	// inherit the dead entry; use few terminals so it finishes quickly.
	small := terms[:2]
	if _, err := svc.Connect(context.Background(), small); err != nil {
		t.Fatalf("healthy query failed after deadline miss: %v", err)
	}
}

// TestServiceMidFlightDeadlineReconciles cuts a computation down mid-DP
// through the Service and asserts the cancellation path keeps the
// CacheStats algebra exact: the miss inserted an entry, the removal took
// it back out, and nothing else moved. (The expired-deadline path in the
// test above never reaches the cache at all, so this is the only route to
// a nonzero Removals outside a panic.)
func TestServiceMidFlightDeadlineReconciles(t *testing.T) {
	c, terms := hardInstance(t)
	svc := core.NewService(c)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := svc.Connect(ctx, terms); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}

	st := svc.Stats()
	if st.Misses != 1 || st.Removals != 1 || st.Entries != 0 {
		t.Fatalf("after mid-flight deadline: %+v, want 1 miss, 1 removal, 0 entries", st)
	}
	assertStatsReconcile(t, st, 1)
}

// TestInterpretationsHonorContext covers the second exponential loop of
// the v2 contract: the ranked-cover enumeration.
func TestInterpretationsHonorContext(t *testing.T) {
	c, terms := hardInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Interpretations(ctx, terms[:4], c.Graph().N(), 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
