package core

import (
	"context"
	"testing"
)

// TestServiceHitPathLockFree pins the PR's headline property at the
// Service level: once an answer is settled in the cache, serving it again
// — and reading stats alongside — acquires zero shard mutexes. The cache
// counts every mutex acquisition; a warm replay must not move the needle.
func TestServiceHitPathLockFree(t *testing.T) {
	ctx := context.Background()
	svc := NewService(New(tinyScheme()))
	queries := [][]int{{0, 1}, {0, 2}, {1, 2}}
	for _, q := range queries {
		if _, err := svc.Connect(ctx, q); err != nil {
			t.Fatalf("warm-up connect %v: %v", q, err)
		}
	}

	before := svc.cache.LockAcquisitions()
	for i := 0; i < 200; i++ {
		q := queries[i%len(queries)]
		if _, err := svc.Connect(ctx, q); err != nil {
			t.Fatalf("hit connect %v: %v", q, err)
		}
		_ = svc.Stats()
		_ = svc.ShardStats()
	}
	if got := svc.cache.LockAcquisitions(); got != before {
		t.Fatalf("warm replay acquired %d shard locks, want 0", got-before)
	}
	if st := svc.Stats(); st.Hits != 200 || st.Misses != uint64(len(queries)) {
		t.Fatalf("replay accounting: %+v, want 200 hits over %d misses", st, len(queries))
	}
}
