package core

import (
	"errors"
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/steiner"
)

// The v2 query API rejects malformed queries at the boundary with a typed
// taxonomy instead of letting raw terminal slices flow into the solvers.
// Every error returned by Connect/ConnectBatch/Interpretations is
// errors.Is-testable against exactly one of:
//
//   - ErrEmptyQuery, ErrInvalidTerminal, ErrTooManyTerminals (this file),
//   - steiner.ErrDisconnectedTerminals, steiner.ErrNotAlphaAcyclic
//     (solver outcomes, passed through unwrapped),
//   - context.Canceled / context.DeadlineExceeded (cancellation, passed
//     through so errors.Is(err, context.DeadlineExceeded) works),
//   - ErrUnknownScheme (Registry lookups).
//
// ErrEmptyQuery and ErrTooManyTerminals wrap the corresponding steiner
// sentinels, so code written against the v1 solver errors
// (errors.Is(err, steiner.ErrEmptyTerminals)) keeps working.
var (
	// ErrInvalidTerminal is returned when a query names a terminal that is
	// out of range for the scheme, duplicated within the query, or on a
	// partition the connector was configured to reject.
	ErrInvalidTerminal = errors.New("core: invalid terminal")

	// ErrEmptyQuery is returned when a query has no terminals.
	ErrEmptyQuery = fmt.Errorf("core: empty query: %w", steiner.ErrEmptyTerminals)

	// ErrTooManyTerminals is returned when a query exceeds the connector's
	// terminal budget (WithMaxTerminals) or the exact solver's hard limit.
	ErrTooManyTerminals = fmt.Errorf("core: too many terminals: %w", steiner.ErrTooManyTerminals)

	// ErrUnknownScheme is returned by Registry operations naming a scheme
	// that is not (or no longer) registered.
	ErrUnknownScheme = errors.New("core: unknown scheme")
)

// validateTerminals applies the boundary checks shared by every query
// entry point: non-empty, in range, duplicate-free, within the terminal
// budget, and on an allowed partition. It runs before dispatch and before
// the Service cache, so invalid queries never reach a solver or poison a
// cache entry.
func validateTerminals(fb *bipartite.Frozen, terminals []int, maxTerminals int, v1Only bool) error {
	if len(terminals) == 0 {
		return ErrEmptyQuery
	}
	if maxTerminals > 0 && len(terminals) > maxTerminals {
		return fmt.Errorf("%w: %d terminals exceed the configured budget of %d",
			ErrTooManyTerminals, len(terminals), maxTerminals)
	}
	n := fb.N()
	seen := make(map[int]struct{}, len(terminals))
	for i, t := range terminals {
		if t < 0 || t >= n {
			return fmt.Errorf("%w: id %d at position %d is out of range [0,%d)",
				ErrInvalidTerminal, t, i, n)
		}
		if _, dup := seen[t]; dup {
			return fmt.Errorf("%w: id %d appears more than once in the query",
				ErrInvalidTerminal, t)
		}
		seen[t] = struct{}{}
		if v1Only && fb.Side(t) != graph.Side1 {
			return fmt.Errorf("%w: id %d (%s) is a V2 node but the connector only accepts V1 terminals",
				ErrInvalidTerminal, t, fb.G().Label(t))
		}
	}
	return nil
}
