package core_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fixtures"
	"repro/internal/gen"
)

// shardedRandomScheme rotates through the PR-3 scheme families (the same
// mix as httpd's randomized equivalence harness) so every dispatch arm —
// Algorithm 2, Algorithm 1, exact, heuristic — and the disconnected case
// come up across the sweep.
func shardedRandomScheme(r *rand.Rand, i int) *bipartite.Graph {
	switch i % 4 {
	case 0:
		// Cyclic, connected: exact/heuristic territory.
		return gen.RandomConnectedBipartite(r, 3+r.Intn(5), 2+r.Intn(4), 0.2+0.4*r.Float64())
	case 1:
		// α-acyclic H¹ incidence graphs: Algorithm 1 territory; may be
		// disconnected, exercising error parity.
		return bipartite.FromHypergraph(gen.AlphaAcyclic(r, 3+r.Intn(4), 2, 2)).B
	case 2:
		// Trees are (6,2)-chordal: Algorithm 2 with full guarantees.
		return gen.RandomTree(r, 4+r.Intn(9))
	default:
		// Complete bipartite: (6,2)-chordal with dense adjacency.
		return gen.CompleteBipartite(2+r.Intn(3), 2+r.Intn(3))
	}
}

// shardedRandomTerminals picks 1–4 distinct node ids (either side).
func shardedRandomTerminals(r *rand.Rand, n int) []int {
	k := 1 + r.Intn(4)
	if k > n {
		k = n
	}
	return r.Perm(n)[:k]
}

// TestShardedCacheEquivalence is the sharding property harness: over the
// random scheme families of the PR-3 suite, a default-sharded Service
// must answer every query — including repeats (cache hits), forced
// methods and interpretation requests — bit-for-bit identically to a
// WithCacheShards(1) Service (the exact v1 single-lock LRU) and to an
// uncached Connector, with identical aggregate stats totals. Sharding may
// only change lock granularity, never an answer or a counter.
func TestShardedCacheEquivalence(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(1985))
	const schemeCount = 120
	for i := 0; i < schemeCount; i++ {
		b := shardedRandomScheme(r, i)
		if b.N() == 0 {
			continue
		}
		conn := core.New(b)
		// Capacity well above the query count: with no evictions the two
		// caches must agree on every counter, not just on answers.
		svc1 := core.NewService(conn, core.WithCacheSize(4096), core.WithCacheShards(1))
		svcN := core.NewService(conn, core.WithCacheSize(4096)) // default shards
		var queries [][]int
		for q := 0; q < 5; q++ {
			queries = append(queries, shardedRandomTerminals(r, b.N()))
		}
		queries = append(queries, queries[0], queries[len(queries)-1]) // repeats: hits
		for qi, terms := range queries {
			var opts []core.QueryOption
			switch qi % 4 {
			case 1:
				opts = append(opts, core.WithMethod(core.MethodHeuristic))
			case 2:
				opts = append(opts, core.WithInterpretations(2, 3))
			case 3:
				opts = append(opts, core.WithCacheBypass())
			}
			want, wantErr := conn.Connect(ctx, terms, opts...)
			got1, err1 := svc1.Connect(ctx, terms, opts...)
			gotN, errN := svcN.Connect(ctx, terms, opts...)
			if (wantErr == nil) != (err1 == nil) || (wantErr == nil) != (errN == nil) {
				t.Fatalf("scheme %d query %d: error divergence: connector=%v shards1=%v sharded=%v",
					i, qi, wantErr, err1, errN)
			}
			if wantErr != nil {
				if err1.Error() != wantErr.Error() || errN.Error() != wantErr.Error() {
					t.Fatalf("scheme %d query %d: error text divergence: %q / %q / %q",
						i, qi, wantErr, err1, errN)
				}
				continue
			}
			if !reflect.DeepEqual(want, got1) || !reflect.DeepEqual(want, gotN) {
				t.Fatalf("scheme %d query %d terms %v: answers diverge across shard counts:\nconnector: %+v\nshards=1:  %+v\nsharded:   %+v",
					i, qi, terms, want, got1, gotN)
			}
		}
		st1, stN := svc1.Stats(), svcN.Stats()
		if st1.Hits != stN.Hits || st1.Misses != stN.Misses ||
			st1.Evictions != stN.Evictions || st1.Bypasses != stN.Bypasses ||
			st1.Removals != stN.Removals || st1.Entries != stN.Entries {
			t.Fatalf("scheme %d: aggregate stats diverge across shard counts:\nshards=1: %+v\nsharded:  %+v", i, st1, stN)
		}
	}
}

// TestShardedCacheHammerRace drives Services at several shard counts from
// many goroutines with overlapping keys, bypasses and a cache small
// enough to evict under load; under -race it asserts the per-shard
// locking is sound, and every concurrent answer is checked bit-for-bit
// against the sequential one.
func TestShardedCacheHammerRace(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(73))
	b := bipartite.FromHypergraph(gen.GammaAcyclic(r, 30, 3, 3)).B
	conn := core.New(b)

	type query struct {
		terms []int
		conn  core.Connection
		err   error
	}
	var queries []query
	for k := 0; k < 24; k++ {
		terms := distinctTerms(r, b.N(), 3)
		c, err := conn.Connect(ctx, terms)
		queries = append(queries, query{terms: terms, conn: c, err: err})
	}

	for _, shards := range []int{1, 2, 0, 64} { // 0 = default
		name := fmt.Sprintf("shards=%d", shards)
		t.Run(name, func(t *testing.T) {
			svc := core.NewService(conn, core.WithCacheSize(16), core.WithCacheShards(shards))
			const goroutines, perG = 16, 50
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for w := 0; w < goroutines; w++ {
				wg.Add(1)
				go func(seed int) {
					defer wg.Done()
					rr := rand.New(rand.NewSource(int64(seed)))
					for i := 0; i < perG; i++ {
						q := queries[rr.Intn(len(queries))]
						var opts []core.QueryOption
						if i%10 == 9 {
							opts = append(opts, core.WithCacheBypass())
						}
						got, err := svc.Connect(ctx, q.terms, opts...)
						if (err == nil) != (q.err == nil) {
							errs <- fmt.Errorf("error mismatch for %v: %v vs %v", q.terms, err, q.err)
							return
						}
						if err == nil && !reflect.DeepEqual(got, q.conn) {
							errs <- fmt.Errorf("concurrent answer for %v differs at %s", q.terms, name)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			assertStatsReconcile(t, svc.Stats(), goroutines*perG)
		})
	}
}

// assertStatsReconcile checks the counter algebra every CacheStats must
// satisfy after a run of total requests: each request counts exactly once
// (hit, miss or bypass), every miss or warm fill inserted exactly one
// entry, every entry left by capacity eviction or deliberate removal
// (cancellation and panic outcomes), the per-shard occupancy is the entry
// count within capacity, and the recompute-cost ledger balances — resident
// cost is exactly what was added minus what eviction and removal took out.
func assertStatsReconcile(t *testing.T, st core.CacheStats, total uint64) {
	t.Helper()
	if st.Hits+st.Misses+st.Bypasses != total {
		t.Errorf("lookup accounting off: hits %d + misses %d + bypasses %d != %d requests (%+v)",
			st.Hits, st.Misses, st.Bypasses, total, st)
	}
	if uint64(st.Entries) != st.Misses+st.WarmFills-st.Evictions-st.Removals {
		t.Errorf("residency accounting off: entries %d != misses %d + warm fills %d - evictions %d - removals %d (%+v)",
			st.Entries, st.Misses, st.WarmFills, st.Evictions, st.Removals, st)
	}
	if st.CostResidentNanos != st.CostAddedNanos-st.CostEvictedNanos-st.CostRemovedNanos {
		t.Errorf("cost ledger off: resident %d != added %d - evicted %d - removed %d (%+v)",
			st.CostResidentNanos, st.CostAddedNanos, st.CostEvictedNanos, st.CostRemovedNanos, st)
	}
	if st.Entries > st.Capacity {
		t.Errorf("over capacity: %d > %d (%+v)", st.Entries, st.Capacity, st)
	}
	if len(st.ShardEntries) != st.Shards {
		t.Errorf("shard occupancy has %d slots for %d shards (%+v)", len(st.ShardEntries), st.Shards, st)
	}
	sum := 0
	for _, n := range st.ShardEntries {
		sum += n
	}
	if sum != st.Entries {
		t.Errorf("shard occupancy sums to %d, entries say %d (%+v)", sum, st.Entries, st)
	}
	if st.Shards < 1 || st.Shards&(st.Shards-1) != 0 {
		t.Errorf("shard count %d is not a power of two (%+v)", st.Shards, st)
	}
}

// TestCacheStatsAccuracyUnderConcurrency is the dedicated stats-accuracy
// hammer: a deliberately tiny sharded cache under concurrent hits, misses,
// evictions and bypasses, whose totals must still reconcile exactly with
// the number of requests issued.
func TestCacheStatsAccuracyUnderConcurrency(t *testing.T) {
	ctx := context.Background()
	b := fixtures.Fig3b()
	conn := core.New(b)
	svc := core.NewService(conn, core.WithCacheSize(2), core.WithCacheShards(4))
	// Every 2-subset of the 5 nodes is a valid query; 10 keys over an
	// effective capacity of 4 guarantees constant eviction churn.
	var pool [][]int
	for x := 0; x < b.N(); x++ {
		for y := x + 1; y < b.N(); y++ {
			pool = append(pool, []int{x, y})
		}
	}
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(int64(seed)))
			for i := 0; i < perG; i++ {
				var opts []core.QueryOption
				if i%7 == 6 {
					opts = append(opts, core.WithCacheBypass())
				}
				if _, err := svc.Connect(ctx, pool[rr.Intn(len(pool))], opts...); err != nil {
					t.Errorf("connect: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := svc.Stats()
	assertStatsReconcile(t, st, goroutines*perG)
	if st.Evictions == 0 {
		t.Errorf("tiny cache under churn never evicted: %+v", st)
	}
	if st.Bypasses == 0 || st.Hits == 0 || st.Misses == 0 {
		t.Errorf("hammer failed to exercise every counter: %+v", st)
	}
}

// TestCacheMinimumPerShardCapacity pins the rounding rule at the Service
// level: a cache smaller than its shard count must round *up* to one
// entry per shard, never silently down to zero — a zero-capacity shard
// could never hit.
func TestCacheMinimumPerShardCapacity(t *testing.T) {
	ctx := context.Background()
	b := fixtures.Fig3b()
	svc := core.NewService(core.New(b), core.WithCacheSize(1), core.WithCacheShards(64))
	st := svc.Stats()
	if st.Shards != 64 || st.Capacity != 64 {
		t.Fatalf("WithCacheSize(1) over 64 shards: %+v, want capacity 64 (one entry per shard)", st)
	}
	q := b.G().IDs("A", "C")
	if _, err := svc.Connect(ctx, q); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Connect(ctx, q); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("repeat on a min-capacity shard must hit: %+v", st)
	}
}

// TestWithCacheShardsRounding pins the option's normalization: requests
// round up to a power of two, non-positive selects the documented
// GOMAXPROCS-derived default.
func TestWithCacheShardsRounding(t *testing.T) {
	b := fixtures.Fig3b()
	conn := core.New(b)
	for _, tc := range []struct{ ask, want int }{
		{1, 1}, {2, 2}, {3, 4}, {8, 8}, {33, 64},
	} {
		svc := core.NewService(conn, core.WithCacheShards(tc.ask))
		if got := svc.Stats().Shards; got != tc.want {
			t.Errorf("WithCacheShards(%d): shards = %d, want %d", tc.ask, got, tc.want)
		}
	}
	if got := core.NewService(conn).Stats().Shards; got != cache.DefaultShards() {
		t.Errorf("default shards = %d, want %d", got, cache.DefaultShards())
	}
}
