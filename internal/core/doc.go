// Package core assembles the paper's results into the system its
// introduction motivates: a logically-independent connection service. A
// Connector classifies a conceptual scheme (a bipartite graph) once against
// the chordality taxonomy of Section 2, then answers minimal-connection
// queries (Section 3) with the strongest algorithm the class admits:
//
//	(6,2)-chordal                 → Algorithm 2: node-minimum Steiner tree,
//	                                polynomial (Theorem 5)
//	V1-chordal ∧ V1-conformal     → Algorithm 1: tree minimizing auxiliary
//	                                relations (V2 nodes), polynomial
//	                                (Theorems 3–4); total node count is
//	                                NP-complete here (Theorem 2)
//	otherwise                     → exact Dreyfus–Wagner when the terminal
//	                                count is small, else the 2-approximation
//
// Connector also enumerates ranked alternative interpretations of a query
// (the interactive-disambiguation loop sketched in the introduction).
//
// # The v2 query model
//
// Every query entry point takes a context.Context first and functional
// options last:
//
//	conn := core.New(b, core.WithExactLimit(10))
//	answer, err := conn.Connect(ctx, terminals, core.WithInterpretations(3, 5))
//
// The context is plumbed into the solvers' hot loops — the exponential
// Dreyfus–Wagner program checks it per terminal subset, the elimination
// passes every few removals — so a deadline bounds tail latency rather
// than being noticed after the fact; on expiry Connect returns
// context.DeadlineExceeded. Terminals are validated at the boundary
// (ErrEmptyQuery, ErrInvalidTerminal, ErrTooManyTerminals in errors.go)
// before any solver runs.
//
// # Frozen-view serving architecture
//
// New compiles the scheme once: it freezes the bipartite graph into the
// immutable CSR view of internal/graph and internal/bipartite, classifies
// that view (chordality.ClassifyFrozen), and answers every Connect on the
// frozen-path solvers of internal/steiner. Because the frozen view and the
// classification never change, a Connector is safe for unsynchronized
// concurrent Connect calls — the scheme passed to New must simply not be
// mutated afterwards (the classify-once contract).
//
// Service wraps a Connector for query-many workloads (see service.go), and
// Registry (registry.go) serves many named schemes from one process with
// atomic compile-and-swap updates.
//
// # The sharded answer cache
//
// Service fronts its Connector with an LRU answer cache (internal/cache)
// keyed on the canonical terminal set plus the answer-changing query
// options, with in-flight deduplication: of any number of identical
// queries arriving concurrently, one computes and the rest wait on its
// entry. The cache is split into independently locked shards selected by
// a hash of the key — WithCacheShards tunes the count (default GOMAXPROCS
// rounded up to a power of two, at most 64) — so a warm high-QPS path
// does not serialize every hit on one mutex. WithCacheShards(1) restores
// the exact single-lock global-LRU semantics; answers are identical at
// any shard count. WithCacheSize capacity is split across shards by
// ceiling division with a floor of one entry per shard, and Stats reports
// aggregate counters plus per-shard occupancy (CacheStats.ShardEntries).
package core
