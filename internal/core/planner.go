package core

// The batch planner: before ConnectBatch fans queries out to its worker
// pool, queries whose terminal sets intersect are grouped (union-find over
// terminal ids), because they provably share BFS work — they lie in the
// same connected components, and overlapping terminal sets reuse the same
// distance rows. Each group gets one steiner.Shared, built lazily by the
// first worker whose query actually misses the answer cache (a fully warm
// batch never floods anything), then read by every other query of the
// group. Sharing is read-only after the sync.Once build, so the existing
// bounded worker pool needs no extra synchronization, and answers remain
// bit-for-bit those of per-query computation (asserted by
// TestConnectBatchPlannerEquivalence).

import (
	"context"
	"sync"
	"time"

	"repro/internal/steiner"
	"repro/internal/trace"
)

// batchGroup is one planner group: the distinct terminal ids of a set of
// queries connected through shared terminals, plus the lazily built Shared.
type batchGroup struct {
	terms    []int // distinct terminal ids across the group's queries
	queries  int   // how many queries landed in this group
	withRows bool  // some query dispatches to the heuristic → rows pay off

	once sync.Once
	sh   *steiner.Shared
}

// shared returns the group's Shared, building it on first call. A build
// cut short by ctx leaves sh nil — the solvers then just compute locally
// (and observe the same cancelled ctx themselves). The winning build is
// traced as the "planner" phase and its wall time feeds the per-scheme
// Shared-build histogram; cache-hit members never get here at all.
func (g *batchGroup) shared(ctx context.Context, s *Service) *steiner.Shared {
	g.once.Do(func() {
		sp := trace.FromContext(ctx).StartSpan("planner")
		sp.AnnotateInt("group_queries", int64(g.queries))
		sp.AnnotateInt("group_terms", int64(len(g.terms)))
		start := time.Now()
		sh := steiner.NewShared(s.c.fb.G())
		err := sh.Precompute(ctx, g.terms, g.withRows)
		s.sharedBuildDur.ObserveDuration(time.Since(start))
		sp.End()
		if err != nil {
			return
		}
		g.sh = sh
	})
	return g.sh
}

// batchPlan maps each query index of a batch to its group, or nil for
// queries that share no terminal with any other (a singleton gains nothing
// from precomputation — the solver would flood exactly once anyway).
type batchPlan struct {
	groups []*batchGroup // by query index; nil = no shared work
}

// group returns query i's group or nil.
func (p *batchPlan) group(i int) *batchGroup {
	if p == nil {
		return nil
	}
	return p.groups[i]
}

// planBatch groups the batch's queries by shared terminals. Returns nil
// when no two queries share a terminal (including every batch of size < 2).
func planBatch(c *Connector, queries [][]int, q queryConfig) *batchPlan {
	if len(queries) < 2 {
		return nil
	}
	// Union-find over query indices, joined whenever two queries name the
	// same terminal id.
	parent := make([]int, len(queries))
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	owner := make(map[int]int) // terminal id → first query index naming it
	joined := false
	for i, ts := range queries {
		for _, t := range ts {
			j, ok := owner[t]
			if !ok {
				owner[t] = i
				continue
			}
			ri, rj := find(i), find(j)
			if ri != rj {
				parent[ri] = rj
				joined = true
			} else if i != j {
				joined = true // duplicate sets still share work
			}
		}
	}
	if !joined {
		return nil
	}
	byRoot := make(map[int]*batchGroup)
	groups := make([]*batchGroup, len(queries))
	for i, ts := range queries {
		r := find(i)
		g := byRoot[r]
		if g == nil {
			g = &batchGroup{}
			byRoot[r] = g
		}
		g.queries++
		if c.resolveMethod(q, len(ts)) == MethodHeuristic {
			g.withRows = true
		}
		groups[i] = g
	}
	// Each distinct terminal id joins its group's precompute list once.
	for t, i := range owner {
		g := byRoot[find(i)]
		g.terms = append(g.terms, t)
	}
	// Drop singleton groups: no second query, nothing to share.
	for i, g := range groups {
		if g.queries < 2 {
			groups[i] = nil
		}
	}
	return &batchPlan{groups: groups}
}
