package core_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

// BenchmarkServeHotParallel measures the warm serving path — every query
// a cache hit — at high goroutine parallelism across shard counts. This
// is the workload the sharded cache exists for: with one shard every hit
// serializes on a single mutex and throughput flatlines as cores are
// added; sharding lets hits on distinct keys proceed on distinct locks.
// Compare ns/op across the shards=1/8/64 sub-benchmarks on a multi-core
// machine (on one core the lock is uncontended and they tie).
func BenchmarkServeHotParallel(b *testing.B) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(7))
	scheme := gen.RandomTree(r, 200) // connected, (6,2)-chordal: cheap warmup
	conn := core.New(scheme)

	// A hot working set of distinct cached answers, large enough that 64
	// shards all see traffic and small enough to stay fully resident.
	const hotKeys = 256
	queries := make([][]int, hotKeys)
	for i := range queries {
		queries[i] = distinctTerms(r, scheme.N(), 3)
	}

	for _, shards := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			svc := core.NewService(conn, core.WithCacheSize(4096), core.WithCacheShards(shards))
			for _, q := range queries { // warm: the benchmark loop only hits
				if _, err := svc.Connect(ctx, q); err != nil {
					b.Fatal(err)
				}
			}
			// 64-way parallelism regardless of GOMAXPROCS, so the
			// lock-contention difference shows on any multi-core box.
			if p := 64 / runtime.GOMAXPROCS(0); p > 1 {
				b.SetParallelism(p)
			}
			var next atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Stagger goroutines across the key space so concurrent
				// lookups mostly touch distinct keys (and thus, when
				// sharded, distinct locks).
				i := next.Add(hotKeys / 4)
				for pb.Next() {
					q := queries[i%hotKeys]
					i++
					if _, err := svc.Connect(ctx, q); err != nil {
						b.Error(err) // Fatal must not be called off the main goroutine
						return
					}
				}
			})
			b.StopTimer()
			if st := svc.Stats(); st.Misses > hotKeys {
				b.Fatalf("hot set fell out of cache: %+v", st)
			}
		})
	}
}

// TestServeHotShardingSpeedup asserts the point of the sharded cache — hot
// hits on distinct keys scale past a single mutex — but only where the
// claim is testable. On a runner with fewer cores than shards the
// goroutines serialize on the scheduler, both configurations tie, and any
// "speedup" number is noise; earlier trajectory files from 1–2 core CI
// runners were misread exactly this way, so here the test skips loudly
// instead of reporting a meaningless ratio.
func TestServeHotShardingSpeedup(t *testing.T) {
	const shards = 8
	if cores := runtime.GOMAXPROCS(0); cores < shards {
		t.Skipf("GOMAXPROCS=%d < %d shards: contention never materializes, ratio would be noise", cores, shards)
	}
	if testing.Short() {
		t.Skip("timed throughput comparison")
	}

	ctx := context.Background()
	r := rand.New(rand.NewSource(7))
	scheme := gen.RandomTree(r, 200)
	conn := core.New(scheme)
	const hotKeys = 256
	queries := make([][]int, hotKeys)
	for i := range queries {
		queries[i] = distinctTerms(r, scheme.N(), 3)
	}

	// hitsPerSecond drives every worker over the warmed hot set for a
	// fixed wall-clock window and returns aggregate throughput.
	hitsPerSecond := func(shardCount int) float64 {
		svc := core.NewService(conn, core.WithCacheSize(4096), core.WithCacheShards(shardCount))
		for _, q := range queries {
			if _, err := svc.Connect(ctx, q); err != nil {
				t.Fatal(err)
			}
		}
		const window = 300 * time.Millisecond
		var total atomic.Uint64
		var wg sync.WaitGroup
		deadline := time.Now().Add(window)
		for w := 0; w < shards; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				i, n := uint64(w)*(hotKeys/shards), uint64(0)
				for time.Now().Before(deadline) {
					if _, err := svc.Connect(ctx, queries[i%hotKeys]); err != nil {
						t.Error(err)
						return
					}
					i++
					n++
				}
				total.Add(n)
			}(w)
		}
		wg.Wait()
		return float64(total.Load()) / window.Seconds()
	}

	single := hitsPerSecond(1)
	sharded := hitsPerSecond(shards)
	t.Logf("hot qps: 1 shard %.0f, %d shards %.0f (%.2fx)", single, shards, sharded, sharded/single)
	if sharded < 1.2*single {
		t.Errorf("sharding speedup %.2fx on %d cores, want >= 1.2x (single %.0f qps, sharded %.0f qps)",
			sharded/single, runtime.GOMAXPROCS(0), single, sharded)
	}
}
