package core_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// BenchmarkServeHotParallel measures the warm serving path — every query
// a cache hit — at high goroutine parallelism across shard counts. This
// is the workload the sharded cache exists for: with one shard every hit
// serializes on a single mutex and throughput flatlines as cores are
// added; sharding lets hits on distinct keys proceed on distinct locks.
// Compare ns/op across the shards=1/8/64 sub-benchmarks on a multi-core
// machine (on one core the lock is uncontended and they tie).
func BenchmarkServeHotParallel(b *testing.B) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(7))
	scheme := gen.RandomTree(r, 200) // connected, (6,2)-chordal: cheap warmup
	conn := core.New(scheme)

	// A hot working set of distinct cached answers, large enough that 64
	// shards all see traffic and small enough to stay fully resident.
	const hotKeys = 256
	queries := make([][]int, hotKeys)
	for i := range queries {
		queries[i] = distinctTerms(r, scheme.N(), 3)
	}

	for _, shards := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			svc := core.NewService(conn, core.WithCacheSize(4096), core.WithCacheShards(shards))
			for _, q := range queries { // warm: the benchmark loop only hits
				if _, err := svc.Connect(ctx, q); err != nil {
					b.Fatal(err)
				}
			}
			// 64-way parallelism regardless of GOMAXPROCS, so the
			// lock-contention difference shows on any multi-core box.
			if p := 64 / runtime.GOMAXPROCS(0); p > 1 {
				b.SetParallelism(p)
			}
			var next atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Stagger goroutines across the key space so concurrent
				// lookups mostly touch distinct keys (and thus, when
				// sharded, distinct locks).
				i := next.Add(hotKeys / 4)
				for pb.Next() {
					q := queries[i%hotKeys]
					i++
					if _, err := svc.Connect(ctx, q); err != nil {
						b.Error(err) // Fatal must not be called off the main goroutine
						return
					}
				}
			})
			b.StopTimer()
			if st := svc.Stats(); st.Misses > hotKeys {
				b.Fatalf("hot set fell out of cache: %+v", st)
			}
		})
	}
}
