package reference

import (
	"repro/internal/graph"
	"repro/internal/intset"
)

// IsGoodOrdering decides Definition 11 literally: an ordering of the nodes
// is good iff for EVERY subset P of nodes that can be connected at all,
// eliminating redundant nodes in that order yields a minimum cover of P.
// Exponential in |V| (every subset is tried, each against the brute-force
// minimum); tiny graphs only.
func IsGoodOrdering(g *graph.Graph, order []int) bool {
	_, ok := FindGoodOrderingViolation(g, order)
	return !ok
}

// FindGoodOrderingViolation returns a terminal set on which the ordering's
// elimination misses the minimum cover, if any.
func FindGoodOrderingViolation(g *graph.Graph, order []int) (intset.Set, bool) {
	n := g.N()
	if n > 16 {
		panic("reference.IsGoodOrdering: instance too large")
	}
	for mask := uint64(1); mask < 1<<uint(n); mask++ {
		var terms []int
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				terms = append(terms, v)
			}
		}
		want, ok := MinimumCover(g, terms)
		if !ok {
			continue // P not connectable; Definition 11 is vacuous here
		}
		got := eliminateOrdered(g, terms, order)
		if got.Len() != want.Len() {
			return intset.FromSlice(terms), true
		}
	}
	return nil, false
}

// eliminateOrdered mirrors steiner.EliminateOrdered (single pass, relaxed
// cover test, restriction to the terminals' component) without importing
// it — reference must not depend on the package it certifies.
func eliminateOrdered(g *graph.Graph, terminals []int, order []int) intset.Set {
	comp := g.ComponentContaining(terminals)
	alive := make([]bool, g.N())
	for _, v := range comp {
		alive[v] = true
	}
	p := intset.FromSlice(terminals)
	for _, v := range order {
		if v < 0 || v >= g.N() || !alive[v] || p.Contains(v) {
			continue
		}
		alive[v] = false
		if !g.TerminalsConnected(alive, terminals) {
			alive[v] = true
		}
	}
	dist := g.BFSDistancesAlive(terminals[0], alive)
	var out []int
	for v := range alive {
		if alive[v] && dist[v] >= 0 {
			out = append(out, v)
		}
	}
	return intset.FromSlice(out)
}
