package reference

import (
	"testing"

	"repro/internal/bipartite"
)

// fig3bGraph rebuilds the (6,2)-chordal Fig 3b graph (fixtures are not
// importable here: reference must stay below fixtures in the dependency
// order used by the steiner tests).
func fig3bGraph() *bipartite.Graph {
	b := bipartite.New()
	for _, l := range []string{"A", "B", "C"} {
		b.AddV1(l)
	}
	for _, l := range []string{"1", "2", "3"} {
		b.AddV2(l)
	}
	for _, arc := range [][2]string{
		{"A", "1"}, {"B", "1"}, {"B", "2"}, {"C", "2"}, {"C", "3"}, {"A", "3"},
		{"C", "1"}, {"A", "2"},
	} {
		u, _ := b.G().ID(arc[0])
		v, _ := b.G().ID(arc[1])
		b.AddEdge(u, v)
	}
	return b
}

// TestCorollary5ExhaustiveOnFig3b verifies Corollary 5 EXHAUSTIVELY on the
// paper's own (6,2)-chordal example: every one of the 720 node orderings is
// a good ordering per Definition 11 (checked over every terminal subset).
func TestCorollary5ExhaustiveOnFig3b(t *testing.T) {
	g := fig3bGraph().G()
	n := g.N()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	count := 0
	var failed []int
	rec = func(k int) {
		if failed != nil {
			return
		}
		if k == n {
			count++
			if !IsGoodOrdering(g, perm) {
				failed = append([]int(nil), perm...)
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	if failed != nil {
		t.Fatalf("ordering %v is not good on the (6,2)-chordal Fig 3b", failed)
	}
	if count != 720 {
		t.Fatalf("checked %d orderings, want 720", count)
	}
}

// TestGoodOrderingViolationOnSingleChordCycle shows the converse side of
// Lemma 4/Corollary 5: on the (6,1)-but-not-(6,2) Fig 3c graph some
// ordering is NOT good.
func TestGoodOrderingViolationOnSingleChordCycle(t *testing.T) {
	b := bipartite.New()
	for _, l := range []string{"A", "B", "C"} {
		b.AddV1(l)
	}
	for _, l := range []string{"1", "2", "3"} {
		b.AddV2(l)
	}
	for _, arc := range [][2]string{
		{"A", "1"}, {"B", "1"}, {"B", "2"}, {"C", "2"}, {"C", "3"}, {"A", "3"},
		{"C", "1"},
	} {
		u, _ := b.G().ID(arc[0])
		v, _ := b.G().ID(arc[1])
		b.AddEdge(u, v)
	}
	g := b.G()
	// Eliminating node 1 first loses the shortcut for P = {B, A}: the
	// elimination is forced around the long way.
	order := g.IDs("1", "A", "B", "C", "2", "3")
	if terms, bad := FindGoodOrderingViolation(g, order); !bad {
		t.Error("expected a violation on the single-chord 6-cycle")
	} else if terms.Empty() {
		t.Error("violation without terminals")
	}
}
