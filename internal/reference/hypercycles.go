package reference

import (
	"repro/internal/hypergraph"
	"repro/internal/intset"
)

// HasBergeCycle searches for a Berge cycle per Definition 6: q ≥ 2 distinct
// edges e_1 … e_q and q distinct nodes n_1 … n_q with n_i ∈ e_i ∩ e_{i+1}
// and n_q ∈ e_q ∩ e_1. Exhaustive over cyclic edge sequences with a
// backtracking search for distinct connecting nodes. Exponential.
func HasBergeCycle(h *hypergraph.Hypergraph) bool {
	m := h.M()
	for q := 2; q <= m; q++ {
		if searchEdgeCycles(h, q, func(seq []int) bool {
			return hasDistinctConnectors(h, seq, nil)
		}) {
			return true
		}
	}
	return false
}

// HasBetaCycle searches for a β-cycle per Definition 6: a Berge cycle with
// q ≥ 3 whose connecting node n_i lies in no edge of the sequence other
// than e_i and e_{i+1} (and n_q only in e_q and e_1). Exponential.
func HasBetaCycle(h *hypergraph.Hypergraph) bool {
	m := h.M()
	for q := 3; q <= m; q++ {
		if searchEdgeCycles(h, q, func(seq []int) bool {
			return hasExclusiveConnectors(h, seq)
		}) {
			return true
		}
	}
	return false
}

// HasGammaCycle searches for a γ-cycle per Definition 6: a β-cycle, or a
// 3-edge cycle (e1, e2, e3) whose connectors satisfy n1 ∉ e3 and n2 ∉ e1.
func HasGammaCycle(h *hypergraph.Hypergraph) bool {
	if HasBetaCycle(h) {
		return true
	}
	return searchEdgeCycles(h, 3, func(seq []int) bool {
		// The special-triangle conditions are not rotation invariant, so
		// try every choice of middle edge (reflections are symmetric).
		for r := 0; r < 3; r++ {
			e1, e2, e3 := h.Edge(seq[r]), h.Edge(seq[(r+1)%3]), h.Edge(seq[(r+2)%3])
			n1s := e1.Inter(e2).Diff(e3)
			n2s := e2.Inter(e3).Diff(e1)
			n3s := e3.Inter(e1)
			// Any n3 ∈ e3 ∩ e1 is automatically distinct from n1 (∉ e3)
			// and n2 (∉ e1).
			if !n1s.Empty() && !n2s.Empty() && !n3s.Empty() {
				return true
			}
		}
		return false
	})
}

// searchEdgeCycles enumerates cyclic sequences of q distinct edge indices
// up to rotation and reflection (first index minimal, second < last) and
// returns true as soon as accept does.
func searchEdgeCycles(h *hypergraph.Hypergraph, q int, accept func(seq []int) bool) bool {
	m := h.M()
	if q > m {
		return false
	}
	seq := make([]int, 0, q)
	used := make([]bool, m)
	var rec func() bool
	rec = func() bool {
		if len(seq) == q {
			if q > 2 && seq[1] > seq[q-1] {
				return false // canonical reflection only
			}
			return accept(seq)
		}
		for e := 0; e < m; e++ {
			if used[e] || e <= seq[0] {
				continue
			}
			used[e] = true
			seq = append(seq, e)
			if rec() {
				return true
			}
			seq = seq[:len(seq)-1]
			used[e] = false
		}
		return false
	}
	for first := 0; first <= m-q; first++ {
		seq = append(seq[:0], first)
		for i := range used {
			used[i] = false
		}
		used[first] = true
		if rec() {
			return true
		}
	}
	return false
}

// hasDistinctConnectors checks for distinct nodes n_i ∈ e_i ∩ e_{i+1}
// (cyclically), optionally constrained to the given candidate sets, via
// backtracking.
func hasDistinctConnectors(h *hypergraph.Hypergraph, seq []int, candidates []intset.Set) bool {
	q := len(seq)
	if candidates == nil {
		candidates = make([]intset.Set, q)
		for i := 0; i < q; i++ {
			candidates[i] = h.Edge(seq[i]).Inter(h.Edge(seq[(i+1)%q]))
		}
	}
	usedNode := map[int]bool{}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == q {
			return true
		}
		for _, n := range candidates[i] {
			if usedNode[n] {
				continue
			}
			usedNode[n] = true
			if rec(i + 1) {
				return true
			}
			delete(usedNode, n)
		}
		return false
	}
	return rec(0)
}

// hasExclusiveConnectors checks the β-cycle node conditions: the candidate
// set for position i excludes every edge of the sequence other than e_i and
// e_{i+1}. The candidate sets are then pairwise disjoint, so nonemptiness
// of each suffices.
func hasExclusiveConnectors(h *hypergraph.Hypergraph, seq []int) bool {
	q := len(seq)
	for i := 0; i < q; i++ {
		cand := h.Edge(seq[i]).Inter(h.Edge(seq[(i+1)%q]))
		for j := 0; j < q; j++ {
			if j == i || j == (i+1)%q {
				continue
			}
			cand = cand.Diff(h.Edge(seq[j]))
		}
		if cand.Empty() {
			return false
		}
	}
	return true
}
