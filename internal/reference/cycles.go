// Package reference implements slow, directly-definitional checkers for
// every property the library's fast recognizers decide: (m,n)-chordality by
// cycle enumeration (Definition 4), Vi-chordality and Vi-conformity
// (Definition 5), Berge/β/γ-cycles by exhaustive edge-sequence search
// (Definition 6), chordal graphs, and brute-force minimum covers and
// Steiner trees (Definition 10).
//
// Everything here is exponential and intended only for tests and
// experiments on small instances, where it certifies the polynomial
// implementations in internal/chordality, internal/hypergraph and
// internal/steiner.
package reference

import (
	"repro/internal/graph"
)

// AllCycles enumerates every cycle of g with at least minLen nodes, each
// reported once as a node sequence in canonical form: the smallest node
// first, and its smaller neighbour second. Exponential; small graphs only.
func AllCycles(g *graph.Graph, minLen int) [][]int {
	var out [][]int
	n := g.N()
	inPath := make([]bool, n)
	var path []int
	var extend func(start int)
	extend = func(start int) {
		last := path[len(path)-1]
		for _, w := range g.Neighbors(last) {
			if w == start {
				// Close the cycle when long enough; canonical direction:
				// second node smaller than last node (avoids reporting each
				// cycle twice).
				if len(path) >= 3 && len(path) >= minLen && path[1] < path[len(path)-1] {
					out = append(out, append([]int(nil), path...))
				}
				continue
			}
			if w < start || inPath[w] {
				continue
			}
			inPath[w] = true
			path = append(path, w)
			extend(start)
			path = path[:len(path)-1]
			inPath[w] = false
		}
	}
	for s := 0; s < n; s++ {
		inPath[s] = true
		path = append(path[:0], s)
		extend(s)
		inPath[s] = false
	}
	return out
}

// IsMNChordal reports whether g is (m, n)-chordal per Definition 4: every
// cycle with at least m nodes has at least n chords. Exponential.
func IsMNChordal(g *graph.Graph, m, n int) bool {
	_, ok := FindMNChordalityViolation(g, m, n)
	return !ok
}

// FindMNChordalityViolation returns a cycle of length ≥ m with fewer than n
// chords, if one exists.
func FindMNChordalityViolation(g *graph.Graph, m, n int) ([]int, bool) {
	for _, c := range AllCycles(g, m) {
		if len(g.CycleChords(c)) < n {
			return c, true
		}
	}
	return nil, false
}

// IsChordalGraph reports whether g is chordal (every cycle of length ≥ 4
// has a chord), by enumeration. Exponential.
func IsChordalGraph(g *graph.Graph) bool {
	return IsMNChordal(g, 4, 1)
}
