package reference

import (
	"math/rand"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/intset"
)

func cycleGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(string(rune('a' + i)))
	}
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

func TestAllCyclesCounts(t *testing.T) {
	tests := []struct {
		name   string
		g      *graph.Graph
		minLen int
		want   int
	}{
		{"C4", cycleGraph(4), 3, 1},
		{"C6", cycleGraph(6), 3, 1},
		{"C6 minLen 8", cycleGraph(6), 8, 0},
		{"K4", completeGraph(4), 3, 7}, // 4 triangles + 3 four-cycles
		{"K4 minLen 4", completeGraph(4), 4, 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := len(AllCycles(tc.g, tc.minLen)); got != tc.want {
				t.Errorf("got %d cycles, want %d", got, tc.want)
			}
		})
	}
}

func completeGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(string(rune('a' + i)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func TestAllCyclesAreCycles(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for iter := 0; iter < 50; iter++ {
		g := randomGraph(r, 7, 0.4)
		for _, c := range AllCycles(g, 3) {
			if !g.IsCycle(c) {
				t.Fatalf("enumerated non-cycle %v in %v", c, g)
			}
		}
	}
}

func randomGraph(r *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(string(rune('a' + i)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

func TestIsMNChordal(t *testing.T) {
	c6 := cycleGraph(6)
	if IsMNChordal(c6, 6, 1) {
		t.Error("chordless C6 is not (6,1)-chordal")
	}
	if !IsMNChordal(c6, 8, 1) {
		t.Error("C6 is vacuously (8,1)-chordal")
	}
	c6.AddEdge(0, 3)
	if !IsMNChordal(c6, 6, 1) {
		t.Error("C6 + one chord is (6,1)-chordal")
	}
	if IsMNChordal(c6, 6, 2) {
		t.Error("C6 + one chord is not (6,2)-chordal")
	}
	if !IsChordalGraph(completeGraph(5)) {
		t.Error("K5 is chordal")
	}
	if IsChordalGraph(cycleGraph(4)) {
		t.Error("C4 is not chordal")
	}
}

func TestFindMNChordalityViolationWitness(t *testing.T) {
	c6 := cycleGraph(6)
	cyc, bad := FindMNChordalityViolation(c6, 6, 1)
	if !bad || len(cyc) != 6 {
		t.Fatalf("violation = %v, %v", cyc, bad)
	}
	if !c6.IsCycle(cyc) {
		t.Error("witness is not a cycle")
	}
}

// bipartiteC8 is the chordless 8-cycle as a bipartite graph.
func bipartiteC8() *bipartite.Graph {
	b := bipartite.New()
	var ids []int
	for i := 0; i < 4; i++ {
		ids = append(ids, b.AddV1(string(rune('a'+i))))
		ids = append(ids, b.AddV2(string(rune('w'+i))))
	}
	for i := 0; i < 8; i++ {
		b.AddEdge(ids[i], ids[(i+1)%8])
	}
	return b
}

func TestV1ChordalReference(t *testing.T) {
	c8 := bipartiteC8()
	if IsV1Chordal(c8) {
		t.Error("chordless C8 should not be V1-chordal")
	}
	if IsV2Chordal(c8) {
		t.Error("chordless C8 should not be V2-chordal")
	}
	// Add a V2 hub adjacent to all V1 nodes: every pair of V1 nodes now has
	// a witness at distance 4 on the cycle.
	hub := c8.AddV2("hub")
	for _, v := range c8.V1() {
		c8.AddEdge(v, hub)
	}
	if !IsV1Chordal(c8) {
		t.Error("hubbed C8 should be V1-chordal")
	}
	cyc, bad := FindV1ChordalityViolation(bipartiteC8())
	if !bad || len(cyc) != 8 {
		t.Errorf("violation = %v, %v", cyc, bad)
	}
}

func TestV1ConformalReference(t *testing.T) {
	// Three V1 nodes pairwise sharing V2 neighbours but with no common one.
	b := bipartite.New()
	a := b.AddV1("a")
	bb := b.AddV1("b")
	c := b.AddV1("c")
	for _, pair := range [][2]int{{a, bb}, {bb, c}, {a, c}} {
		w := b.AddV2("w" + b.G().Label(pair[0]) + b.G().Label(pair[1]))
		b.AddEdge(pair[0], w)
		b.AddEdge(pair[1], w)
	}
	if IsV1Conformal(b) {
		t.Error("triangle pattern should not be V1-conformal")
	}
	s, bad := FindV1ConformityViolation(b)
	if !bad || s.Len() < 2 {
		t.Fatalf("violation = %v, %v", s, bad)
	}
	hub := b.AddV2("hub")
	for _, v := range b.V1() {
		b.AddEdge(v, hub)
	}
	if !IsV1Conformal(b) {
		t.Error("hubbed triangle should be V1-conformal")
	}
	if !IsV2Conformal(bipartiteC8()) {
		t.Error("C8 is V2-conformal (no distance-2 triples with trouble)")
	}
}

func TestDefinitionalCycleSearchesAgainstFast(t *testing.T) {
	// The fast recognizers in internal/hypergraph must agree with the
	// literal Definition 6 searches on random hypergraphs.
	r := rand.New(rand.NewSource(77))
	for iter := 0; iter < 400; iter++ {
		h := randomH(r, 2+r.Intn(5), 2+r.Intn(4))
		if got, want := h.BergeAcyclic(), !HasBergeCycle(h); got != want {
			t.Fatalf("Berge mismatch on %v: fast=%v ref=%v", h, got, want)
		}
		if got, want := h.BetaAcyclic(), !HasBetaCycle(h); got != want {
			t.Fatalf("beta mismatch on %v: fast=%v ref=%v", h, got, want)
		}
		if got, want := h.GammaAcyclic(), !HasGammaCycle(h); got != want {
			t.Fatalf("gamma mismatch on %v: fast=%v ref=%v", h, got, want)
		}
	}
}

func randomH(r *rand.Rand, n, m int) *hypergraph.Hypergraph {
	h := hypergraph.New()
	for i := 0; i < n; i++ {
		h.AddNode(string(rune('a' + i)))
	}
	for i := 0; i < m; i++ {
		sz := 1 + r.Intn(n)
		perm := r.Perm(n)
		h.AddEdge("", perm[:sz]...)
	}
	return h
}

func TestMinimumCover(t *testing.T) {
	// Path a-b-c-d: minimum cover of {a,d} is all four nodes.
	g := graph.NewWithNodes("a", "b", "c", "d")
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	cover, ok := MinimumCover(g, []int{0, 3})
	if !ok || cover.Len() != 4 {
		t.Fatalf("cover = %v, %v", cover, ok)
	}
	if SteinerMinimumNodes(g, []int{0, 3}) != 4 {
		t.Error("SteinerMinimumNodes wrong")
	}
	// Disconnected terminals.
	g.AddNode("iso")
	if _, ok := MinimumCover(g, []int{0, 4}); ok {
		t.Error("disconnected terminals covered")
	}
	if SteinerMinimumNodes(g, []int{0, 4}) != -1 {
		t.Error("expected -1 for disconnected terminals")
	}
}

func TestMinimumCoverPrefersShortcut(t *testing.T) {
	// a-b-c and a-x-y-c: minimum cover of {a,c} goes through b.
	g := graph.NewWithNodes("a", "b", "c", "x", "y")
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 2)
	cover, ok := MinimumCover(g, []int{0, 2})
	if !ok || !cover.Equal(intset.New(0, 1, 2)) {
		t.Errorf("cover = %v", cover)
	}
}

func TestMinimumV2Count(t *testing.T) {
	// V1 = {a, c}, V2 = {w1 (a,c), w2 (a), w3 (c)}: optimum is 1 (w1).
	b := bipartite.New()
	a := b.AddV1("a")
	c := b.AddV1("c")
	w1 := b.AddV2("w1")
	w2 := b.AddV2("w2")
	w3 := b.AddV2("w3")
	b.AddEdge(a, w1)
	b.AddEdge(c, w1)
	b.AddEdge(a, w2)
	b.AddEdge(c, w3)
	if got := MinimumV2Count(b, []int{a, c}); got != 1 {
		t.Errorf("MinimumV2Count = %d, want 1", got)
	}
	// A V2 terminal is forced.
	if got := MinimumV2Count(b, []int{a, w2}); got != 1 {
		t.Errorf("MinimumV2Count with V2 terminal = %d, want 1", got)
	}
	// Disconnected.
	iso := b.AddV1("iso")
	if got := MinimumV2Count(b, []int{a, iso}); got != -1 {
		t.Errorf("MinimumV2Count disconnected = %d, want -1", got)
	}
}

func TestNonredundantAndMinimumCovers(t *testing.T) {
	// C6: covers of two opposite nodes {0, 3} — both halves of the cycle
	// are nonredundant covers of equal size 4 (plus none smaller).
	g := cycleGraph(6)
	covers := NonredundantCovers(g, []int{0, 3})
	if len(covers) != 2 {
		t.Fatalf("nonredundant covers = %v", covers)
	}
	for _, c := range covers {
		if c.Len() != 4 {
			t.Errorf("cover %v has size %d", c, c.Len())
		}
		if !IsMinimumCover(g, c, []int{0, 3}) {
			t.Errorf("cover %v not minimum", c)
		}
		if !IsNonredundantCover(g, c, []int{0, 3}) {
			t.Errorf("cover %v not nonredundant (enumeration bug)", c)
		}
	}
	// The full cycle is a cover but redundant.
	all := intset.New(0, 1, 2, 3, 4, 5)
	if IsNonredundantCover(g, all, []int{0, 3}) {
		t.Error("full C6 should be redundant")
	}
	if IsMinimumCover(g, all, []int{0, 3}) {
		t.Error("full C6 should not be minimum")
	}
}
