package reference

import (
	"math/bits"

	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/intset"
)

// MinimumCover returns a minimum cover of the terminals P per
// Definition 10: a smallest node set V' ⊇ P whose induced subgraph is
// connected. It returns nil, false when P cannot be connected. Exponential
// in |V − P|; small graphs only.
func MinimumCover(g *graph.Graph, terminals []int) (intset.Set, bool) {
	p := intset.FromSlice(terminals)
	var others []int
	for v := 0; v < g.N(); v++ {
		if !p.Contains(v) {
			others = append(others, v)
		}
	}
	if len(others) > 30 {
		panic("reference.MinimumCover: instance too large")
	}
	alive := make([]bool, g.N())
	try := func(mask uint64) bool {
		for i := range alive {
			alive[i] = false
		}
		for _, v := range p {
			alive[v] = true
		}
		for i, v := range others {
			if mask&(1<<uint(i)) != 0 {
				alive[v] = true
			}
		}
		return g.Covers(alive, terminals)
	}
	// Search by increasing number of extra nodes.
	for extra := 0; extra <= len(others); extra++ {
		for mask := uint64(0); mask < 1<<uint(len(others)); mask++ {
			if bits.OnesCount64(mask) != extra {
				continue
			}
			if try(mask) {
				var sel []int
				sel = append(sel, p...)
				for i, v := range others {
					if mask&(1<<uint(i)) != 0 {
						sel = append(sel, v)
					}
				}
				return intset.FromSlice(sel), true
			}
		}
	}
	return nil, false
}

// SteinerMinimumNodes returns the number of nodes of a minimum cover
// (equivalently, of a Steiner tree: a spanning tree of a minimum cover is
// node-minimum), or -1 when P is disconnected in g.
func SteinerMinimumNodes(g *graph.Graph, terminals []int) int {
	cover, ok := MinimumCover(g, terminals)
	if !ok {
		return -1
	}
	return cover.Len()
}

// MinimumV2Count returns the minimum possible number of V2 nodes in a cover
// of the terminals (the pseudo-Steiner optimum with respect to V2,
// Definition 9), or -1 when P cannot be connected. Exponential in |V2|.
//
// It is enough to search over subsets W of V2: the subgraph induced by
// V1 ∪ W contains a component covering P iff some cover V' with
// V' ∩ V2 ⊆ W exists.
func MinimumV2Count(b *bipartite.Graph, terminals []int) int {
	g := b.G()
	v2 := b.V2()
	p := intset.FromSlice(terminals)
	var optional []int
	var forced int
	for _, w := range v2 {
		if p.Contains(w) {
			forced++
		} else {
			optional = append(optional, w)
		}
	}
	if len(optional) > 30 {
		panic("reference.MinimumV2Count: instance too large")
	}
	alive := make([]bool, g.N())
	try := func(mask uint64) bool {
		for v := 0; v < g.N(); v++ {
			alive[v] = b.Side(v) == graph.Side1
		}
		for _, t := range terminals {
			alive[t] = true
		}
		for i, w := range optional {
			if mask&(1<<uint(i)) != 0 {
				alive[w] = true
			}
		}
		// A component of the alive subgraph containing all terminals is a
		// cover whose V2 nodes are within the selection.
		if len(terminals) == 0 {
			return true
		}
		dist := g.BFSDistancesAlive(terminals[0], alive)
		for _, t := range terminals {
			if dist[t] == -1 {
				return false
			}
		}
		return true
	}
	for extra := 0; extra <= len(optional); extra++ {
		for mask := uint64(0); mask < 1<<uint(len(optional)); mask++ {
			if bits.OnesCount64(mask) != extra {
				continue
			}
			if try(mask) {
				return forced + extra
			}
		}
	}
	return -1
}

// IsNonredundantCover reports whether the subgraph induced by nodes is a
// nonredundant cover of the terminals (Definition 10): a cover from which
// no single node can be removed while remaining a cover.
func IsNonredundantCover(g *graph.Graph, nodes intset.Set, terminals []int) bool {
	alive := make([]bool, g.N())
	for _, v := range nodes {
		alive[v] = true
	}
	if !g.Covers(alive, terminals) {
		return false
	}
	p := intset.FromSlice(terminals)
	for _, v := range nodes {
		if p.Contains(v) {
			continue
		}
		alive[v] = false
		if g.Covers(alive, terminals) {
			return false
		}
		alive[v] = true
	}
	// Removing a terminal never leaves a cover (P ⊄ V'), so only
	// non-terminals matter.
	return true
}

// IsMinimumCover reports whether nodes induces a cover of the terminals of
// minimum size. Exponential.
func IsMinimumCover(g *graph.Graph, nodes intset.Set, terminals []int) bool {
	alive := make([]bool, g.N())
	for _, v := range nodes {
		alive[v] = true
	}
	if !g.Covers(alive, terminals) {
		return false
	}
	best, ok := MinimumCover(g, terminals)
	return ok && nodes.Len() == best.Len()
}

// NonredundantCovers enumerates every nonredundant cover of the terminals.
// Exponential; used by Lemma 5 experiments on small graphs.
func NonredundantCovers(g *graph.Graph, terminals []int) []intset.Set {
	p := intset.FromSlice(terminals)
	var others []int
	for v := 0; v < g.N(); v++ {
		if !p.Contains(v) {
			others = append(others, v)
		}
	}
	if len(others) > 22 {
		panic("reference.NonredundantCovers: instance too large")
	}
	var out []intset.Set
	for mask := uint64(0); mask < 1<<uint(len(others)); mask++ {
		sel := p.Clone()
		for i, v := range others {
			if mask&(1<<uint(i)) != 0 {
				sel = sel.Add(v)
			}
		}
		if IsNonredundantCover(g, sel, terminals) {
			out = append(out, sel)
		}
	}
	return out
}
