package reference

import (
	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/intset"
)

// IsV1Chordal decides V1-chordality literally per Definition 5: for every
// cycle of G with at least 8 nodes there is a node of V2 adjacent to at
// least two nodes of the cycle whose distance along the cycle is at least
// 4. (Such a witness node is necessarily adjacent to V1 nodes of the
// cycle, since the graph is bipartite.) Exponential.
func IsV1Chordal(b *bipartite.Graph) bool {
	_, ok := FindV1ChordalityViolation(b)
	return !ok
}

// FindV1ChordalityViolation returns a cycle of length ≥ 8 with no
// Definition 5 witness, if one exists.
func FindV1ChordalityViolation(b *bipartite.Graph) ([]int, bool) {
	g := b.G()
	for _, c := range AllCycles(g, 8) {
		if !hasShortcutWitness(b, c) {
			return c, true
		}
	}
	return nil, false
}

// hasShortcutWitness reports whether some V2 node is adjacent to two cycle
// nodes at cycle distance ≥ 4.
func hasShortcutWitness(b *bipartite.Graph, cycle []int) bool {
	g := b.G()
	pos := map[int]int{}
	for i, v := range cycle {
		pos[v] = i
	}
	for _, u := range b.V2() {
		nbr := g.Neighbors(u)
		var onCycle []int
		for _, v := range nbr {
			if _, ok := pos[v]; ok {
				onCycle = append(onCycle, v)
			}
		}
		for i := 0; i < len(onCycle); i++ {
			for j := i + 1; j < len(onCycle); j++ {
				if graph.CycleDistance(pos[onCycle[i]], pos[onCycle[j]], len(cycle)) >= 4 {
					return true
				}
			}
		}
	}
	return false
}

// IsV2Chordal is IsV1Chordal with the sides swapped.
func IsV2Chordal(b *bipartite.Graph) bool {
	return IsV1Chordal(b.Swap())
}

// IsV1Conformal decides V1-conformity literally per Definition 5: for every
// set S of at least two V1 nodes with pairwise distance exactly 2 there is
// a V2 node adjacent to every node of S. Exponential in |V1|.
//
// Singleton sets are excluded, mirroring the size-≥2 clique convention of
// hypergraph conformality (see internal/hypergraph.Conformal).
func IsV1Conformal(b *bipartite.Graph) bool {
	_, ok := FindV1ConformityViolation(b)
	return !ok
}

// FindV1ConformityViolation returns a mutually-distance-2 subset of V1 with
// no common V2 neighbour, if one exists.
func FindV1ConformityViolation(b *bipartite.Graph) (intset.Set, bool) {
	g := b.G()
	v1 := b.V1()
	// Pairwise distance 2 = the pair shares a V2 neighbour (distance cannot
	// be lower between two V1 nodes, and we require exactly 2).
	share := func(x, y int) bool {
		return g.Neighbors(x).Intersects(g.Neighbors(y))
	}
	n := len(v1)
	var cur []int
	var bad intset.Set
	var rec func(idx int) bool
	rec = func(idx int) bool {
		if len(cur) >= 2 {
			common := g.Neighbors(cur[0]).Clone()
			for _, v := range cur[1:] {
				common = common.Inter(g.Neighbors(v))
			}
			if common.Empty() {
				bad = intset.FromSlice(cur)
				return true
			}
		}
		for i := idx; i < n; i++ {
			v := v1[i]
			ok := true
			for _, u := range cur {
				if !share(u, v) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			cur = append(cur, v)
			if rec(i + 1) {
				return true
			}
			cur = cur[:len(cur)-1]
		}
		return false
	}
	if rec(0) {
		return bad, true
	}
	return nil, false
}

// IsV2Conformal is IsV1Conformal with the sides swapped.
func IsV2Conformal(b *bipartite.Graph) bool {
	return IsV1Conformal(b.Swap())
}
