// Package fixtures encodes the figures of the paper as named, documented
// graph/hypergraph values. Where the scanned source preserves a figure's
// exact arcs (Figs 3c, 6) the fixture is a transcription; where it does not
// (the scan garbles most figure art), the fixture is a *reconstruction*
// satisfying exactly the properties the text asserts for that figure, and
// the experiment suite verifies those properties. Each doc comment states
// which case applies.
package fixtures

import (
	"repro/internal/bipartite"
	"repro/internal/steiner"
)

// Fig2 is a reconstruction of Fig 2's phenomenon: a bipartite graph that is
// V1-chordal and V1-conformal (H¹G α-acyclic) whose H²G is NOT α-acyclic —
// the witness that α-acyclicity is not self-dual (remark after
// Corollary 1). V1 = {A,B,C}; V2 = {1={A,B}, 2={B,C}, 3={A,C}, 0={A,B,C}}.
func Fig2() *bipartite.Graph {
	b := bipartite.New()
	a := b.AddV1("A")
	bb := b.AddV1("B")
	c := b.AddV1("C")
	add := func(name string, nbrs ...int) {
		w := b.AddV2(name)
		for _, v := range nbrs {
			b.AddEdge(v, w)
		}
	}
	add("1", a, bb)
	add("2", bb, c)
	add("3", a, c)
	add("0", a, bb, c)
	return b
}

// Fig3a is the (4,1)-chordal (acyclic) bipartite graph of Fig 3a: a tree,
// whose H¹ is the Berge-acyclic hypergraph of Fig 4a.
func Fig3a() *bipartite.Graph {
	b := bipartite.New()
	for _, l := range []string{"A", "B", "C", "D", "E", "F"} {
		b.AddV1(l)
	}
	for _, l := range []string{"1", "2", "3"} {
		b.AddV2(l)
	}
	for _, arc := range [][2]string{
		{"A", "1"}, {"C", "1"}, {"C", "2"}, {"B", "2"}, {"D", "2"},
		{"E", "2"}, {"C", "3"}, {"F", "3"},
	} {
		b.AddEdgeLabels(arc[0], arc[1])
	}
	return b
}

// Fig3b is a (6,2)-chordal bipartite graph (Fig 3b): the 6-cycle
// A-1-B-2-C-3 with two chords 1-C and 2-A; its H¹ is the γ-acyclic
// hypergraph of Fig 4b.
func Fig3b() *bipartite.Graph {
	b := sixCycle()
	b.AddEdgeLabels("1", "C")
	b.AddEdgeLabels("2", "A")
	return b
}

// Fig3c is a (6,1)- but not (6,2)-chordal bipartite graph (Fig 3c): the
// 6-cycle with the single chord 1-C; its H¹ is the β-acyclic hypergraph of
// Fig 4c.
func Fig3c() *bipartite.Graph {
	b := sixCycle()
	b.AddEdgeLabels("1", "C")
	return b
}

// sixCycle returns the chordless cycle A-1-B-2-C-3.
func sixCycle() *bipartite.Graph {
	b := bipartite.New()
	for _, l := range []string{"A", "B", "C"} {
		b.AddV1(l)
	}
	for _, l := range []string{"1", "2", "3"} {
		b.AddV2(l)
	}
	for _, arc := range [][2]string{
		{"A", "1"}, {"B", "1"}, {"B", "2"}, {"C", "2"}, {"C", "3"}, {"A", "3"},
	} {
		b.AddEdgeLabels(arc[0], arc[1])
	}
	return b
}

// Fig5 reconstructs Fig 5: a bipartite graph that is V1-chordal,
// V1-conformal AND V2-chordal, V2-conformal but not (6,1)-chordal, proving
// the containment of Corollary 2 proper. It is the chordless 6-cycle
// v1-w1-v2-w2-v3-w3 plus a V2 hub ws adjacent to v1,v2,v3 and a V1 hub vs
// adjacent to w1,w2,w3,ws.
func Fig5() *bipartite.Graph {
	b := bipartite.New()
	v1 := b.AddV1("v1")
	v2 := b.AddV1("v2")
	v3 := b.AddV1("v3")
	vs := b.AddV1("vs")
	w1 := b.AddV2("w1")
	w2 := b.AddV2("w2")
	w3 := b.AddV2("w3")
	ws := b.AddV2("ws")
	for _, arc := range [][2]int{
		{v1, w1}, {v2, w1}, {v2, w2}, {v3, w2}, {v3, w3}, {v1, w3},
		{v1, ws}, {v2, ws}, {v3, ws},
		{vs, w1}, {vs, w2}, {vs, w3}, {vs, ws},
	} {
		b.AddEdge(arc[0], arc[1])
	}
	return b
}

// Fig6Instance is the exact X3C instance of Fig 6: X = {x1, …, x6},
// C = {c1 = {x1,x2,x3}, c2 = {x3,x4,x5}, c3 = {x4,x5,x6}} (q = 2). The
// instance is solvable: {c1, c3} is an exact cover.
func Fig6Instance() steiner.X3CInstance {
	return steiner.X3CInstance{
		Q: 2,
		Triples: [][3]int{
			{0, 1, 2}, // c1 = {x1, x2, x3}
			{2, 3, 4}, // c2 = {x3, x4, x5}
			{3, 4, 5}, // c3 = {x4, x5, x6}
		},
	}
}

// Fig8 reconstructs the cover-comparison graph of Fig 8: a bipartite graph
// with terminals P = {A, C, D} admitting a nonredundant cover that is not
// minimum, a strictly smaller minimum cover, and V1-variants that differ
// again. V1 = {A,B,C,D,E}, V2 = {1,2,3,4,5}; arcs chosen so:
//
//	{A,B,C,D,1,3}   — nonredundant cover (path through B)
//	{A,C,D,2,3}     — minimum cover (hub 2 reaches A, C; 3 links D)
func Fig8() *bipartite.Graph {
	b := bipartite.New()
	for _, l := range []string{"A", "B", "C", "D", "E"} {
		b.AddV1(l)
	}
	for _, l := range []string{"1", "2", "3", "4", "5"} {
		b.AddV2(l)
	}
	for _, arc := range [][2]string{
		{"A", "1"}, {"B", "1"}, {"B", "3"}, {"C", "3"}, {"D", "3"},
		{"A", "2"}, {"C", "2"}, {"E", "2"},
		{"D", "4"}, {"E", "4"},
		{"A", "5"}, {"E", "5"},
	} {
		b.AddEdgeLabels(arc[0], arc[1])
	}
	return b
}

// Fig10 is the Lemma 4 counterexample shape: a 6-cycle with exactly one
// chord, in which the endpoints v1, v2 of the chordless "long way" admit a
// nonredundant path of length 4 although their distance is 2 — witnessing
// that such graphs are not (6,2)-chordal. Cycle A-1-B-2-C-3 with chord 1-C;
// v1 = B, v2 = A (both adjacent to 1) have the nonredundant path
// B-2-C-3-A.
func Fig10() *bipartite.Graph {
	return Fig3c()
}

// Fig11 reconstructs the Theorem 6 graph: a (6,1)-chordal bipartite graph
// on which NO node ordering is good. V1 = {A,B,C,D,E,F},
// V2 = {1,2,3,4,5,6} with
//
//	3 = {A,C}, 4 = {A,D}, 5 = {B,E}, 6 = {B,F},
//	1 = {A,B,C,E}, 2 = {A,B,D,F}.
//
// Every ordering starts with one of A, B, 1, 2 among that quadruple, and
// the four witness terminal sets of Theorem 6 defeat each case:
// (i) A first → P = {3,C,4,D}; (ii) B first → P = {5,E,6,F};
// (iii) 1 first → P = {3,C,5,E}; (iv) 2 first → P = {4,D,6,F}.
func Fig11() *bipartite.Graph {
	b := bipartite.New()
	for _, l := range []string{"A", "B", "C", "D", "E", "F"} {
		b.AddV1(l)
	}
	for _, l := range []string{"1", "2", "3", "4", "5", "6"} {
		b.AddV2(l)
	}
	for _, arc := range [][2]string{
		{"A", "3"}, {"C", "3"},
		{"A", "4"}, {"D", "4"},
		{"B", "5"}, {"E", "5"},
		{"B", "6"}, {"F", "6"},
		{"A", "1"}, {"B", "1"}, {"C", "1"}, {"E", "1"},
		{"A", "2"}, {"B", "2"}, {"D", "2"}, {"F", "2"},
	} {
		b.AddEdgeLabels(arc[0], arc[1])
	}
	return b
}

// Fig11Cases returns the four (leading node, witness terminal set) pairs of
// Theorem 6's proof, as labels.
func Fig11Cases() []struct {
	Lead      string
	Terminals []string
} {
	return []struct {
		Lead      string
		Terminals []string
	}{
		{"A", []string{"3", "C", "4", "D"}},
		{"B", []string{"5", "E", "6", "F"}},
		{"1", []string{"3", "C", "5", "E"}},
		{"2", []string{"4", "D", "6", "F"}},
	}
}
