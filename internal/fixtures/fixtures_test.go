package fixtures_test

import (
	"testing"

	"repro/internal/chordality"
	"repro/internal/fixtures"
	"repro/internal/hypergraph"
	"repro/internal/reference"
)

func TestFig2Properties(t *testing.T) {
	b := fixtures.Fig2()
	if !b.HypergraphV1().H.AlphaAcyclic() {
		t.Error("Fig2 H1 must be alpha-acyclic")
	}
	if b.HypergraphV2().H.AlphaAcyclic() {
		t.Error("Fig2 H2 must not be alpha-acyclic")
	}
	cl := chordality.Classify(b)
	if !cl.AlphaV1() || cl.AlphaV2() {
		t.Errorf("Fig2 classification: %+v", cl)
	}
}

func TestFig3LadderDegrees(t *testing.T) {
	tests := []struct {
		name string
		h    *hypergraph.Hypergraph
		want hypergraph.Degree
	}{
		{"Fig3a->Fig4a", fixtures.Fig3a().HypergraphV1().H, hypergraph.DegreeBerge},
		{"Fig3b->Fig4b", fixtures.Fig3b().HypergraphV1().H, hypergraph.DegreeGamma},
		{"Fig3c->Fig4c", fixtures.Fig3c().HypergraphV1().H, hypergraph.DegreeBeta},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.h.Classify(); got != tc.want {
				t.Errorf("degree = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestFig3AgainstDefinitionalChecks(t *testing.T) {
	a, b, c := fixtures.Fig3a(), fixtures.Fig3b(), fixtures.Fig3c()
	if !reference.IsMNChordal(a.G(), 4, 1) {
		t.Error("Fig3a must be (4,1)-chordal by Definition 4")
	}
	if reference.IsMNChordal(b.G(), 4, 1) || !reference.IsMNChordal(b.G(), 6, 2) {
		t.Error("Fig3b must be (6,2)- but not (4,1)-chordal by Definition 4")
	}
	if reference.IsMNChordal(c.G(), 6, 2) || !reference.IsMNChordal(c.G(), 6, 1) {
		t.Error("Fig3c must be (6,1)- but not (6,2)-chordal by Definition 4")
	}
}

func TestFig5Properties(t *testing.T) {
	cl := chordality.Classify(fixtures.Fig5())
	if !cl.AlphaV1() || !cl.AlphaV2() {
		t.Errorf("Fig5 must be Vi-chordal and Vi-conformal on both sides: %+v", cl)
	}
	if cl.Chordal61 {
		t.Error("Fig5 must not be (6,1)-chordal")
	}
	// Definitional double-check of the chordless 6-cycle.
	if reference.IsMNChordal(fixtures.Fig5().G(), 6, 1) {
		t.Error("Definition 4 check disagrees with the (6,1) verdict")
	}
}

func TestFig6Instance(t *testing.T) {
	inst := fixtures.Fig6Instance()
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if !inst.Solve() {
		t.Error("Fig6 instance must be solvable")
	}
	// Removing c1 breaks solvability (c2 and c3 overlap).
	broken := inst
	broken.Triples = inst.Triples[1:]
	if broken.Solve() {
		t.Error("instance without c1 must be unsolvable")
	}
}

func TestFig10NotChordal62(t *testing.T) {
	if chordality.Is62Chordal(fixtures.Fig10()) {
		t.Error("Fig10 must not be (6,2)-chordal")
	}
	if !chordality.Is61Chordal(fixtures.Fig10()) {
		t.Error("Fig10 must be (6,1)-chordal")
	}
}

func TestFig11Shape(t *testing.T) {
	b := fixtures.Fig11()
	if b.N() != 12 || b.M() != 16 {
		t.Fatalf("Fig11 N=%d M=%d", b.N(), b.M())
	}
	if !chordality.Is61Chordal(b) {
		t.Error("Fig11 must be (6,1)-chordal")
	}
	if chordality.Is62Chordal(b) {
		t.Error("Fig11 must not be (6,2)-chordal")
	}
	if len(fixtures.Fig11Cases()) != 4 {
		t.Error("Fig11 must have four ordering cases")
	}
	// Every node of {A, B, 1, 2} is covered by exactly one case.
	seen := map[string]bool{}
	for _, c := range fixtures.Fig11Cases() {
		if seen[c.Lead] {
			t.Errorf("case %q repeated", c.Lead)
		}
		seen[c.Lead] = true
		if len(c.Terminals) != 4 {
			t.Errorf("case %q has %d terminals", c.Lead, len(c.Terminals))
		}
	}
	for _, lead := range []string{"A", "B", "1", "2"} {
		if !seen[lead] {
			t.Errorf("case %q missing", lead)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	b := fixtures.Fig8()
	g := b.G()
	for _, l := range []string{"A", "B", "C", "D", "E", "1", "2", "3", "4", "5"} {
		if _, ok := g.ID(l); !ok {
			t.Errorf("Fig8 missing node %q", l)
		}
	}
}
