package relational

import (
	"fmt"
	"math/rand"
	"testing"
)

func employees() *Relation {
	r := NewRelation("emp", "name", "dept")
	r.Insert("ann", "toys")
	r.Insert("bob", "tools")
	r.Insert("cam", "toys")
	return r
}

func departments() *Relation {
	r := NewRelation("dept", "dept", "floor")
	r.Insert("toys", "1")
	r.Insert("tools", "2")
	r.Insert("food", "3")
	return r
}

func TestInsertDedup(t *testing.T) {
	r := NewRelation("r", "a")
	r.Insert("x")
	r.Insert("x")
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestInsertArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on wrong arity")
		}
	}()
	NewRelation("r", "a").Insert("x", "y")
}

func TestDuplicateAttrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on duplicate attribute")
		}
	}()
	NewRelation("r", "a", "a")
}

func TestSelectProject(t *testing.T) {
	e := employees()
	toys := e.Select("dept", "toys")
	if toys.Len() != 2 {
		t.Errorf("Select = %d tuples", toys.Len())
	}
	names := e.Project("dept")
	if names.Len() != 2 { // toys, tools
		t.Errorf("Project = %d tuples", names.Len())
	}
}

func TestNaturalJoin(t *testing.T) {
	j := NaturalJoin(employees(), departments())
	if j.Len() != 3 {
		t.Fatalf("join = %d tuples", j.Len())
	}
	for _, tu := range j.Tuples() {
		if j.Value(tu, "dept") == "toys" && j.Value(tu, "floor") != "1" {
			t.Error("join mixed up floors")
		}
	}
	if len(j.Attrs) != 3 {
		t.Errorf("join attrs = %v", j.Attrs)
	}
}

func TestNaturalJoinDisjointIsProduct(t *testing.T) {
	a := NewRelation("a", "x")
	a.Insert("1")
	a.Insert("2")
	b := NewRelation("b", "y")
	b.Insert("p")
	b.Insert("q")
	if got := NaturalJoin(a, b).Len(); got != 4 {
		t.Errorf("product = %d", got)
	}
}

func TestSemijoin(t *testing.T) {
	s := Semijoin(employees(), departments().Select("floor", "1"))
	if s.Len() != 2 {
		t.Errorf("semijoin = %d tuples", s.Len())
	}
	// Semijoin keeps a's attributes only.
	if len(s.Attrs) != 2 {
		t.Errorf("semijoin attrs = %v", s.Attrs)
	}
}

func TestEqual(t *testing.T) {
	a := employees()
	b := employees()
	if !Equal(a, b) {
		t.Error("identical relations not Equal")
	}
	b.Insert("dee", "food")
	if Equal(a, b) {
		t.Error("different relations Equal")
	}
	// Attribute order must not matter.
	c := NewRelation("c", "dept", "name")
	c.Insert("toys", "ann")
	c.Insert("tools", "bob")
	c.Insert("toys", "cam")
	if !Equal(a, c) {
		t.Error("column-permuted relations should be Equal")
	}
}

// chainDB builds a path-schema database r0(a0,a1), r1(a1,a2), … which is
// Berge-acyclic, with random tuples.
func chainDB(r *rand.Rand, k, rows, domain int) ([]*Relation, []int) {
	rels := make([]*Relation, k)
	parent := make([]int, k)
	for i := 0; i < k; i++ {
		rels[i] = NewRelation(fmt.Sprintf("r%d", i), fmt.Sprintf("a%d", i), fmt.Sprintf("a%d", i+1))
		for j := 0; j < rows; j++ {
			rels[i].Insert(fmt.Sprint(r.Intn(domain)), fmt.Sprint(r.Intn(domain)))
		}
		parent[i] = i - 1
	}
	parent[0] = -1
	return rels, parent
}

func TestYannakakisEqualsNaive(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for iter := 0; iter < 60; iter++ {
		rels, parent := chainDB(r, 2+r.Intn(3), 3+r.Intn(6), 2+r.Intn(3))
		want := JoinNaive(rels)
		got, err := JoinAcyclic(rels, parent)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(got, want) {
			t.Fatalf("Yannakakis != naive on %v", rels)
		}
	}
}

func TestFullReduceRemovesDanglingTuples(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for iter := 0; iter < 40; iter++ {
		rels, parent := chainDB(r, 3, 4, 3)
		reduced, err := FullReduce(rels, parent)
		if err != nil {
			t.Fatal(err)
		}
		full := JoinNaive(rels)
		// Global consistency: every remaining tuple of every reduced
		// relation appears in the full join's projection.
		for i, red := range reduced {
			proj := full.Project(rels[i].Attrs...)
			for _, tu := range red.Tuples() {
				found := false
				for _, pt := range proj.Tuples() {
					match := true
					for ai, a := range red.Attrs {
						_ = ai
						if proj.Value(pt, a) != red.Value(tu, a) {
							match = false
							break
						}
					}
					if match {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("dangling tuple %v survived in %s", tu, red.Name)
				}
			}
		}
		// And reduction loses no results.
		got, err := JoinAcyclic(rels, parent)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(got, full) {
			t.Fatal("reduction changed the join result")
		}
	}
}

func TestFullReduceValidation(t *testing.T) {
	rels, _ := chainDB(rand.New(rand.NewSource(1)), 3, 2, 2)
	if _, err := FullReduce(rels, []int{-1, 0}); err == nil {
		t.Error("short parent array accepted")
	}
	if _, err := FullReduce(rels, []int{1, 2, 1}); err == nil {
		t.Error("cyclic parent array accepted")
	}
	if _, err := FullReduce(rels, []int{-1, 0, 7}); err == nil {
		t.Error("out-of-range parent accepted")
	}
}

func TestJoinAcyclicMultipleRoots(t *testing.T) {
	a := NewRelation("a", "x")
	a.Insert("1")
	b := NewRelation("b", "y")
	b.Insert("p")
	b.Insert("q")
	got, err := JoinAcyclic([]*Relation{a, b}, []int{-1, -1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Errorf("cross-component join = %d tuples", got.Len())
	}
}

func TestJoinNaiveEmpty(t *testing.T) {
	if JoinNaive(nil).Len() != 0 {
		t.Error("empty join should have no tuples")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := employees()
	b := a.Clone()
	b.Insert("zed", "food")
	if a.Len() != 3 {
		t.Error("Clone shares tuple storage")
	}
}
