package relational

import (
	"fmt"
	"math/rand"
	"testing"
)

// triangleDB is the classic pairwise-but-not-globally-consistent instance
// on the cyclic scheme r1(a,b), r2(b,c), r3(c,a): every pair joins, but no
// single tuple survives the triangle (the parity trap).
func triangleDB() []*Relation {
	r1 := NewRelation("r1", "a", "b")
	r2 := NewRelation("r2", "b", "c")
	r3 := NewRelation("r3", "c", "a")
	r1.Insert("0", "0")
	r1.Insert("1", "1")
	r2.Insert("0", "1")
	r2.Insert("1", "0")
	r3.Insert("0", "0")
	r3.Insert("1", "1")
	return []*Relation{r1, r2, r3}
}

func TestTriangleIsPairwiseNotGlobal(t *testing.T) {
	rels := triangleDB()
	if !PairwiseConsistent(rels) {
		t.Fatal("triangle instance should be pairwise consistent")
	}
	if GloballyConsistent(rels) {
		t.Fatal("triangle instance should NOT be globally consistent")
	}
	// The full join is in fact empty.
	if JoinNaive(rels).Len() != 0 {
		t.Error("triangle join should be empty")
	}
}

func TestAcyclicPairwiseImpliesGlobal(t *testing.T) {
	// On chain (α-acyclic) schemas, reducing to pairwise consistency must
	// yield global consistency (the [2] theorem the paper cites).
	r := rand.New(rand.NewSource(47))
	for iter := 0; iter < 60; iter++ {
		k := 2 + r.Intn(3)
		rels := make([]*Relation, k)
		for i := 0; i < k; i++ {
			rels[i] = NewRelation(fmt.Sprintf("r%d", i), fmt.Sprintf("a%d", i), fmt.Sprintf("a%d", i+1))
			for j := 0; j < 3+r.Intn(5); j++ {
				rels[i].Insert(fmt.Sprint(r.Intn(3)), fmt.Sprint(r.Intn(3)))
			}
		}
		reduced := MakePairwiseConsistent(rels)
		if !PairwiseConsistent(reduced) {
			t.Fatal("fixpoint not pairwise consistent")
		}
		if !GloballyConsistent(reduced) {
			t.Fatalf("pairwise but not global on acyclic scheme: %v", reduced)
		}
	}
}

func TestMakePairwiseConsistentIdempotent(t *testing.T) {
	rels := triangleDB()
	once := MakePairwiseConsistent(rels)
	twice := MakePairwiseConsistent(once)
	for i := range once {
		if !Equal(once[i], twice[i]) {
			t.Error("fixpoint not idempotent")
		}
	}
	// Inputs untouched.
	if rels[0].Len() != 2 {
		t.Error("input mutated")
	}
}

func TestFullReduceAchievesPairwiseOnTree(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	rels, parent := chainDB(r, 3, 6, 3)
	reduced, err := FullReduce(rels, parent)
	if err != nil {
		t.Fatal(err)
	}
	if !PairwiseConsistent(adjacentOnly(reduced)) {
		t.Error("full reduction should leave adjacent relations consistent")
	}
	if !GloballyConsistent(reduced) {
		t.Error("full reduction on a join tree must give global consistency")
	}
}

// adjacentOnly is the identity here (chain relations share attributes only
// with neighbours; non-adjacent pairs are trivially consistent), kept for
// readability.
func adjacentOnly(rels []*Relation) []*Relation { return rels }

func TestEmptyAndSingleton(t *testing.T) {
	if !PairwiseConsistent(nil) || !GloballyConsistent(nil) {
		t.Error("empty database should be consistent")
	}
	r := NewRelation("r", "a")
	r.Insert("x")
	if !PairwiseConsistent([]*Relation{r}) || !GloballyConsistent([]*Relation{r}) {
		t.Error("singleton database should be consistent")
	}
}
