package relational

import "fmt"

// Rename returns a copy of r with attribute old renamed to new. It panics
// if old is absent or new collides (programmer error, mirroring Project).
func (r *Relation) Rename(old, new string) *Relation {
	if !r.HasAttr(old) {
		panic(fmt.Sprintf("relational: %s has no attribute %q", r.Name, old))
	}
	if old != new && r.HasAttr(new) {
		panic(fmt.Sprintf("relational: %s already has attribute %q", r.Name, new))
	}
	attrs := append([]string(nil), r.Attrs...)
	for i, a := range attrs {
		if a == old {
			attrs[i] = new
		}
	}
	out := NewRelation(r.Name, attrs...)
	for _, t := range r.tuples {
		out.Insert(t...)
	}
	return out
}

// Union returns a ∪ b. Both relations must have the same attribute set;
// column order may differ (b's tuples are permuted to a's order).
func Union(a, b *Relation) (*Relation, error) {
	perm, err := columnPermutation(a, b)
	if err != nil {
		return nil, err
	}
	out := NewRelation(a.Name, a.Attrs...)
	for _, t := range a.tuples {
		out.Insert(t...)
	}
	row := make([]string, len(a.Attrs))
	for _, t := range b.tuples {
		for i, j := range perm {
			row[i] = t[j]
		}
		out.Insert(row...)
	}
	return out, nil
}

// Difference returns a ∖ b under the same attribute-compatibility rules as
// Union.
func Difference(a, b *Relation) (*Relation, error) {
	perm, err := columnPermutation(a, b)
	if err != nil {
		return nil, err
	}
	drop := map[string]bool{}
	row := make([]string, len(a.Attrs))
	for _, t := range b.tuples {
		for i, j := range perm {
			row[i] = t[j]
		}
		drop[tupleKey(row)] = true
	}
	out := NewRelation(a.Name, a.Attrs...)
	for _, t := range a.tuples {
		if !drop[tupleKey(t)] {
			out.Insert(t...)
		}
	}
	return out, nil
}

// columnPermutation maps a's column i to b's column perm[i], or errors
// when the attribute sets differ.
func columnPermutation(a, b *Relation) ([]int, error) {
	if len(a.Attrs) != len(b.Attrs) {
		return nil, fmt.Errorf("relational: %s and %s have different arity", a.Name, b.Name)
	}
	perm := make([]int, len(a.Attrs))
	for i, attr := range a.Attrs {
		j, ok := b.index[attr]
		if !ok {
			return nil, fmt.Errorf("relational: %s lacks attribute %q of %s", b.Name, attr, a.Name)
		}
		perm[i] = j
	}
	return perm, nil
}

func tupleKey(t []string) string {
	key := ""
	for i, v := range t {
		if i > 0 {
			key += "\x00"
		}
		key += v
	}
	return key
}
