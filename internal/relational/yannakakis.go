package relational

import "fmt"

// JoinNaive joins the relations left to right — the baseline evaluation
// whose intermediate results can explode on cyclic schemes.
func JoinNaive(rels []*Relation) *Relation {
	if len(rels) == 0 {
		return NewRelation("empty")
	}
	acc := rels[0]
	for _, r := range rels[1:] {
		acc = NaturalJoin(acc, r)
	}
	return acc
}

// FullReduce runs the Yannakakis full reducer over a join tree given as a
// parent array (parent[i] = index of the parent relation, -1 for roots):
// an upward semijoin sweep (leaves to root) followed by a downward sweep
// (root to leaves). Afterwards every relation is globally consistent — each
// remaining tuple participates in at least one result of the full join.
// The input relations are not modified; reduced copies are returned.
//
// The sweeps are the "semijoin program" of [2]: on an α-acyclic scheme a
// full reducer of linear length exists, and a join tree provides it.
func FullReduce(rels []*Relation, parent []int) ([]*Relation, error) {
	n := len(rels)
	if len(parent) != n {
		return nil, fmt.Errorf("relational: parent array has %d entries for %d relations", len(parent), n)
	}
	children := make([][]int, n)
	var roots []int
	for i, p := range parent {
		switch {
		case p == -1:
			roots = append(roots, i)
		case p < 0 || p >= n || p == i:
			return nil, fmt.Errorf("relational: invalid parent %d for relation %d", p, i)
		default:
			children[p] = append(children[p], i)
		}
	}
	out := make([]*Relation, n)
	for i, r := range rels {
		out[i] = r.Clone()
	}
	// Upward: children reduce parents, deepest first (post-order).
	var post []int
	var walk func(int)
	visited := make([]bool, n)
	for _, r := range roots {
		walk = func(i int) {
			visited[i] = true
			for _, c := range children[i] {
				walk(c)
			}
			post = append(post, i)
		}
		walk(r)
	}
	if len(post) != n {
		return nil, fmt.Errorf("relational: parent array is not a forest")
	}
	for _, i := range post {
		if parent[i] != -1 {
			out[parent[i]] = Semijoin(out[parent[i]], out[i])
		}
	}
	// Downward: parents reduce children, pre-order.
	for k := len(post) - 1; k >= 0; k-- {
		i := post[k]
		for _, c := range children[i] {
			out[c] = Semijoin(out[c], out[i])
		}
	}
	return out, nil
}

// JoinAcyclic evaluates the full join of the relations along a join tree:
// full reduction first, then joins in post-order (children into parents),
// so intermediate results never contain dangling tuples. Returns the full
// join (equal to JoinNaive's result) with the efficiency profile of the
// Yannakakis algorithm.
func JoinAcyclic(rels []*Relation, parent []int) (*Relation, error) {
	reduced, err := FullReduce(rels, parent)
	if err != nil {
		return nil, err
	}
	n := len(rels)
	children := make([][]int, n)
	var roots []int
	for i, p := range parent {
		if p == -1 {
			roots = append(roots, i)
		} else {
			children[p] = append(children[p], i)
		}
	}
	var joinUp func(i int) *Relation
	joinUp = func(i int) *Relation {
		acc := reduced[i]
		for _, c := range children[i] {
			acc = NaturalJoin(acc, joinUp(c))
		}
		return acc
	}
	if len(roots) == 0 {
		return NewRelation("empty"), nil
	}
	acc := joinUp(roots[0])
	for _, r := range roots[1:] {
		acc = NaturalJoin(acc, joinUp(r)) // cross product across components
	}
	return acc, nil
}
