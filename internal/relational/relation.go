// Package relational implements the small in-memory relational engine the
// paper's database reading rests on: relations over string attributes,
// selection/projection/natural join/semijoin, and the Yannakakis
// full-reducer + join evaluation over a join tree — the "semijoin programs"
// whose efficiency on acyclic schemes ([2, 6, 7]) motivates the chordality
// taxonomy.
package relational

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is a named relation instance: an attribute list and a set of
// tuples (rows of strings, one value per attribute). Construct with
// NewRelation; tuples are deduplicated on insert.
type Relation struct {
	Name  string
	Attrs []string

	index  map[string]int
	tuples [][]string
	seen   map[string]bool
}

// NewRelation returns an empty relation with the given attributes.
// Attribute names must be distinct.
func NewRelation(name string, attrs ...string) *Relation {
	r := &Relation{
		Name:  name,
		Attrs: append([]string(nil), attrs...),
		index: make(map[string]int, len(attrs)),
		seen:  make(map[string]bool),
	}
	for i, a := range attrs {
		if _, dup := r.index[a]; dup {
			panic(fmt.Sprintf("relational: duplicate attribute %q in %s", a, name))
		}
		r.index[a] = i
	}
	return r
}

// Insert adds a tuple. It panics when the arity is wrong (programmer
// error); duplicate tuples are ignored.
func (r *Relation) Insert(values ...string) {
	if len(values) != len(r.Attrs) {
		panic(fmt.Sprintf("relational: %s expects %d values, got %d", r.Name, len(r.Attrs), len(values)))
	}
	key := strings.Join(values, "\x00")
	if r.seen[key] {
		return
	}
	r.seen[key] = true
	r.tuples = append(r.tuples, append([]string(nil), values...))
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the tuples (shared; do not modify).
func (r *Relation) Tuples() [][]string { return r.tuples }

// HasAttr reports whether the relation carries the attribute.
func (r *Relation) HasAttr(a string) bool {
	_, ok := r.index[a]
	return ok
}

// Value returns the value of attribute a in the given tuple.
func (r *Relation) Value(tuple []string, a string) string {
	i, ok := r.index[a]
	if !ok {
		panic(fmt.Sprintf("relational: %s has no attribute %q", r.Name, a))
	}
	return tuple[i]
}

// Clone returns an independent copy of r.
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.Name, r.Attrs...)
	for _, t := range r.tuples {
		c.Insert(t...)
	}
	return c
}

// Select returns the tuples where attribute a equals v, as a new relation.
func (r *Relation) Select(a, v string) *Relation {
	out := NewRelation(r.Name+"_sel", r.Attrs...)
	for _, t := range r.tuples {
		if r.Value(t, a) == v {
			out.Insert(t...)
		}
	}
	return out
}

// Project returns the projection of r onto the given attributes
// (deduplicated).
func (r *Relation) Project(attrs ...string) *Relation {
	out := NewRelation(r.Name+"_proj", attrs...)
	row := make([]string, len(attrs))
	for _, t := range r.tuples {
		for i, a := range attrs {
			row[i] = r.Value(t, a)
		}
		out.Insert(row...)
	}
	return out
}

// sharedAttrs returns the attributes common to a and b, in a's order.
func sharedAttrs(a, b *Relation) []string {
	var out []string
	for _, x := range a.Attrs {
		if b.HasAttr(x) {
			out = append(out, x)
		}
	}
	return out
}

// joinKey builds the key of a tuple on the given attributes.
func joinKey(r *Relation, t []string, attrs []string) string {
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = r.Value(t, a)
	}
	return strings.Join(parts, "\x00")
}

// NaturalJoin returns a ⋈ b: tuples agreeing on all shared attributes,
// with the union of the attribute sets (a's attributes first). With no
// shared attributes it is the Cartesian product.
func NaturalJoin(a, b *Relation) *Relation {
	shared := sharedAttrs(a, b)
	var extra []string
	for _, x := range b.Attrs {
		if !a.HasAttr(x) {
			extra = append(extra, x)
		}
	}
	out := NewRelation(a.Name+"*"+b.Name, append(append([]string(nil), a.Attrs...), extra...)...)
	byKey := make(map[string][][]string)
	for _, t := range b.tuples {
		k := joinKey(b, t, shared)
		byKey[k] = append(byKey[k], t)
	}
	for _, ta := range a.tuples {
		k := joinKey(a, ta, shared)
		for _, tb := range byKey[k] {
			row := append([]string(nil), ta...)
			for _, x := range extra {
				row = append(row, b.Value(tb, x))
			}
			out.Insert(row...)
		}
	}
	return out
}

// Semijoin returns a ⋉ b: the tuples of a that join with at least one
// tuple of b. The attribute set is a's.
func Semijoin(a, b *Relation) *Relation {
	shared := sharedAttrs(a, b)
	keys := make(map[string]bool, b.Len())
	for _, t := range b.tuples {
		keys[joinKey(b, t, shared)] = true
	}
	out := NewRelation(a.Name, a.Attrs...)
	for _, t := range a.tuples {
		if keys[joinKey(a, t, shared)] {
			out.Insert(t...)
		}
	}
	return out
}

// Equal reports whether two relations have the same attribute set and the
// same tuple set (attribute order independent).
func Equal(a, b *Relation) bool {
	if len(a.Attrs) != len(b.Attrs) {
		return false
	}
	attrs := append([]string(nil), a.Attrs...)
	sort.Strings(attrs)
	for _, x := range attrs {
		if !b.HasAttr(x) {
			return false
		}
	}
	canon := func(r *Relation) []string {
		rows := make([]string, 0, r.Len())
		for _, t := range r.tuples {
			parts := make([]string, len(attrs))
			for i, x := range attrs {
				parts[i] = r.Value(t, x)
			}
			rows = append(rows, strings.Join(parts, "\x00"))
		}
		sort.Strings(rows)
		return rows
	}
	ra, rb := canon(a), canon(b)
	if len(ra) != len(rb) {
		return false
	}
	for i := range ra {
		if ra[i] != rb[i] {
			return false
		}
	}
	return true
}

// String renders the relation as a small table for debugging.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s) [%d tuples]", r.Name, strings.Join(r.Attrs, ", "), r.Len())
	return b.String()
}
