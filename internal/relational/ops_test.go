package relational

import "testing"

func TestRename(t *testing.T) {
	e := employees()
	r := e.Rename("dept", "department")
	if !r.HasAttr("department") || r.HasAttr("dept") {
		t.Errorf("attrs = %v", r.Attrs)
	}
	if r.Len() != e.Len() {
		t.Error("tuples lost")
	}
	// Self-rename is a copy.
	if got := e.Rename("dept", "dept"); !Equal(got, e) {
		t.Error("identity rename changed relation")
	}
}

func TestRenamePanics(t *testing.T) {
	for _, tc := range []struct{ old, new string }{
		{"ghost", "x"},
		{"name", "dept"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for rename %q->%q", tc.old, tc.new)
				}
			}()
			employees().Rename(tc.old, tc.new)
		}()
	}
}

func TestUnionAndDifference(t *testing.T) {
	a := NewRelation("a", "x", "y")
	a.Insert("1", "p")
	a.Insert("2", "q")
	// Column order deliberately swapped.
	b := NewRelation("b", "y", "x")
	b.Insert("q", "2")
	b.Insert("r", "3")

	u, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 3 {
		t.Errorf("union = %d tuples", u.Len())
	}
	d, err := Difference(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || d.Value(d.Tuples()[0], "x") != "1" {
		t.Errorf("difference = %v", d.Tuples())
	}
}

func TestUnionIncompatible(t *testing.T) {
	a := NewRelation("a", "x")
	b := NewRelation("b", "y")
	if _, err := Union(a, b); err == nil {
		t.Error("incompatible union accepted")
	}
	c := NewRelation("c", "x", "y")
	if _, err := Difference(a, c); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestUnionDifferenceAlgebra(t *testing.T) {
	a := employees()
	b := employees()
	u, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(u, a) {
		t.Error("a ∪ a != a")
	}
	d, err := Difference(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Error("a ∖ a not empty")
	}
}
