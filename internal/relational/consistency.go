package relational

// Consistency of database instances — the first "desirable property" of
// acyclic schemes the paper cites in Section 2 (via Beeri, Fagin, Maier,
// Yannakakis [2]): a database is *pairwise consistent* when every two
// relations agree after mutual semijoins, and *globally consistent* when
// every relation is exactly the projection of one universal join result.
// On α-acyclic schemes pairwise consistency implies global consistency;
// on cyclic schemes it does not (the classic triangle counterexample).

// PairwiseConsistent reports whether every pair of relations is join
// consistent: semijoining either against the other loses no tuples.
func PairwiseConsistent(rels []*Relation) bool {
	for i := 0; i < len(rels); i++ {
		for j := 0; j < len(rels); j++ {
			if i == j {
				continue
			}
			if Semijoin(rels[i], rels[j]).Len() != rels[i].Len() {
				return false
			}
		}
	}
	return true
}

// GloballyConsistent reports whether every relation equals the projection
// of the full natural join onto its attributes — no tuple dangles.
func GloballyConsistent(rels []*Relation) bool {
	if len(rels) == 0 {
		return true
	}
	full := JoinNaive(rels)
	for _, r := range rels {
		proj := full.Project(r.Attrs...)
		proj.Name = r.Name
		if !Equal(proj, r) {
			return false
		}
	}
	return true
}

// MakePairwiseConsistent repeatedly semijoins every relation against every
// other until a fixpoint, returning reduced copies. On α-acyclic schemes
// (with a join tree) FullReduce achieves the same in two sweeps; this
// general fixpoint exists for comparison and for cyclic schemes, where it
// reaches pairwise — but not necessarily global — consistency.
func MakePairwiseConsistent(rels []*Relation) []*Relation {
	out := make([]*Relation, len(rels))
	for i, r := range rels {
		out[i] = r.Clone()
	}
	for changed := true; changed; {
		changed = false
		for i := range out {
			for j := range out {
				if i == j {
					continue
				}
				reduced := Semijoin(out[i], out[j])
				if reduced.Len() != out[i].Len() {
					out[i] = reduced
					changed = true
				}
			}
		}
	}
	return out
}
