// Root benchmark harness: one benchmark family per experiment table of
// EXPERIMENTS.md / DESIGN.md §4, plus substrate micro-benchmarks. Run with
//
//	go test -bench=. -benchmem
package chordal_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/chordality"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/relational"
	"repro/internal/schema"
	"repro/internal/steiner"
)

// BenchmarkRecognizers covers E-T1: the polynomial recognizers of the
// Theorem 1 taxonomy across graph sizes.
func BenchmarkRecognizers(b *testing.B) {
	for _, size := range []int{8, 16, 32} {
		r := rand.New(rand.NewSource(int64(size)))
		g := gen.RandomBipartite(r, size, size, 0.25)
		b.Run(fmt.Sprintf("Is61Chordal/n=%d", 2*size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				chordality.Is61Chordal(g)
			}
		})
		b.Run(fmt.Sprintf("Is62Chordal/n=%d", 2*size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				chordality.Is62Chordal(g)
			}
		})
		b.Run(fmt.Sprintf("V1Chordal/n=%d", 2*size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				chordality.IsV1Chordal(g)
			}
		})
		b.Run(fmt.Sprintf("V1Conformal/n=%d", 2*size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				chordality.IsV1Conformal(g)
			}
		})
		b.Run(fmt.Sprintf("Classify/n=%d", 2*size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				chordality.Classify(g)
			}
		})
	}
}

// BenchmarkAcyclicity benches the hypergraph-side recognizers (the right
// column of Theorem 1) on structured families.
func BenchmarkAcyclicity(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	alpha := gen.AlphaAcyclic(r, 40, 4, 3)
	gamma := gen.GammaAcyclic(r, 40, 3, 3)
	berge := gen.BergeForest(r, 40, 3)
	b.Run("GYO/alpha-m=40", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			alpha.GYO()
		}
	})
	b.Run("BetaNestPoints/gamma-m=40", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gamma.BetaAcyclic()
		}
	})
	b.Run("GammaTriangleScan/gamma-m=40", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gamma.FindGammaTriangle()
		}
	})
	b.Run("BergeCycle/berge-m=40", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			berge.FindBergeCycle()
		}
	})
	b.Run("Conformal/alpha-m=40", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			alpha.Conformal()
		}
	})
	b.Run("Dual/alpha-m=40", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			alpha.Dual()
		}
	})
	b.Run("JoinTree/alpha-m=40", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			alpha.JoinTree()
		}
	})
}

// largestComponentEnds returns two far-apart nodes of the largest
// connected component (generators may produce several components).
func largestComponentEnds(g *graph.Graph) []int {
	var best []int
	for _, c := range g.Components() {
		if len(c) > len(best) {
			best = c
		}
	}
	return []int{best[0], best[len(best)-1]}
}

// BenchmarkAlgorithm1 covers E-T4: pseudo-Steiner w.r.t. V2 on α-acyclic
// incidence graphs of growing size — near O(|V|·|A|) per Theorem 4.
func BenchmarkAlgorithm1(b *testing.B) {
	for _, m := range []int{20, 40, 80, 160} {
		r := rand.New(rand.NewSource(int64(m)))
		h := gen.AlphaAcyclic(r, m, 4, 3)
		bg := bipartite.FromHypergraph(h).B
		g := bg.G()
		terms := largestComponentEnds(g)
		b.Run(fmt.Sprintf("edges=%d/V=%d/A=%d", m, g.N(), g.M()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := steiner.Algorithm1(bg, terms); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAlgorithm2 covers E-T5: Steiner on (6,2)-chordal graphs of
// growing size.
func BenchmarkAlgorithm2(b *testing.B) {
	for _, m := range []int{20, 40, 80, 160} {
		r := rand.New(rand.NewSource(int64(m)))
		h := gen.GammaAcyclic(r, m, 3, 3)
		bg := bipartite.FromHypergraph(h).B
		g := bg.G()
		terms := largestComponentEnds(g)
		b.Run(fmt.Sprintf("edges=%d/V=%d/A=%d", m, g.N(), g.M()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := steiner.Algorithm2(g, terms); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExactOnX3C covers E-T2: the exponential blow-up of the exact
// solver on the Theorem 2 gadgets (terminal count 3q+1), against
// Algorithm 1 on the same inputs.
func BenchmarkExactOnX3C(b *testing.B) {
	for _, q := range []int{1, 2, 3} {
		r := rand.New(rand.NewSource(int64(q)))
		inst := steiner.X3CInstance{Q: q, Triples: gen.RandomX3C(r, q, 2*q, true)}
		red, err := steiner.ReduceX3C(inst)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("Exact/q=%d/terminals=%d", q, len(red.Terminals)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := steiner.Exact(red.B.G(), red.Terminals); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Algorithm1/q=%d/terminals=%d", q, len(red.Terminals)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := steiner.Algorithm1(red.B, red.Terminals); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEliminateOrdered covers E-C5: good-ordering elimination under
// random orderings.
func BenchmarkEliminateOrdered(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	h := gen.GammaAcyclic(r, 60, 3, 3)
	g := bipartite.FromHypergraph(h).B.G()
	terms := largestComponentEnds(g)
	order := r.Perm(g.N())
	b.Run(fmt.Sprintf("V=%d", g.N()), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := steiner.EliminateOrdered(g, terms, order); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkApproximate benches the NP-hard-fallback heuristic on cyclic
// controls (grids), where no polynomial exact algorithm is available.
func BenchmarkApproximate(b *testing.B) {
	for _, side := range []int{4, 8, 12} {
		g := gen.GridBipartite(side, side).G()
		terms := []int{0, g.N() - 1, g.N() / 2}
		b.Run(fmt.Sprintf("grid=%dx%d", side, side), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := steiner.Approximate(g, terms); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInterpretations covers E-FIG1: ranked enumeration at schema
// scale.
func BenchmarkInterpretations(b *testing.B) {
	r := rand.New(rand.NewSource(13))
	bg := gen.RandomConnectedBipartite(r, 6, 6, 0.3)
	conn := core.New(bg)
	terms := []int{0, bg.N() - 1}
	b.Run("n=12", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			conn.Interpretations(context.Background(), terms, 6, 5)
		}
	})
}

// BenchmarkYannakakis covers E-UR: semijoin-program evaluation against the
// naive join on a chain schema whose naive intermediates blow up.
func BenchmarkYannakakis(b *testing.B) {
	r := rand.New(rand.NewSource(17))
	makeChain := func(k, rows, domain int) ([]*relational.Relation, []int) {
		rels := make([]*relational.Relation, k)
		parent := make([]int, k)
		for i := 0; i < k; i++ {
			rels[i] = relational.NewRelation(fmt.Sprintf("r%d", i),
				fmt.Sprintf("a%d", i), fmt.Sprintf("a%d", i+1))
			for j := 0; j < rows; j++ {
				rels[i].Insert(fmt.Sprint(r.Intn(domain)), fmt.Sprint(r.Intn(domain)))
			}
			parent[i] = i - 1
		}
		parent[0] = -1
		return rels, parent
	}
	rels, parent := makeChain(5, 60, 8)
	// Selective variant: the last relation kills almost everything, so the
	// final join is tiny while naive intermediates explode with dangling
	// tuples — the scenario the semijoin programs of [2] exist for.
	selRels, selParent := makeChain(4, 60, 4)
	last := relational.NewRelation("rk", "a4", "a5")
	last.Insert("nomatch", "x")
	selRels = append(selRels, last)
	selParent = append(selParent, len(selRels)-2)
	b.Run("Yannakakis/chain5x60", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := relational.JoinAcyclic(rels, parent); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("NaiveJoin/chain5x60", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			relational.JoinNaive(rels)
		}
	})
	b.Run("Yannakakis/selective", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := relational.JoinAcyclic(selRels, selParent); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("NaiveJoin/selective", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			relational.JoinNaive(selRels)
		}
	})
}

// BenchmarkConnectorDispatch measures the one-off classification cost that
// core.New front-loads.
func BenchmarkConnectorDispatch(b *testing.B) {
	r := rand.New(rand.NewSource(19))
	h := gen.GammaAcyclic(r, 30, 3, 3)
	bg := bipartite.FromHypergraph(h).B
	b.Run("New/m=30", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.New(bg)
		}
	})
	conn := core.New(bg)
	terms := largestComponentEnds(bg.G())
	b.Run("Connect/m=30", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := conn.Connect(context.Background(), terms); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAcyclify measures the schema-design extension: triangulation +
// maximal-clique cover of cyclic schemes.
func BenchmarkAcyclify(b *testing.B) {
	for _, nAttrs := range []int{10, 20, 40} {
		r := rand.New(rand.NewSource(int64(nAttrs)))
		rels := make([]schema.RelScheme, nAttrs)
		for i := range rels {
			a1 := fmt.Sprintf("a%d", i)
			a2 := fmt.Sprintf("a%d", (i+1)%nAttrs)
			a3 := fmt.Sprintf("a%d", r.Intn(nAttrs))
			attrs := []string{a1, a2}
			if a3 != a1 && a3 != a2 {
				attrs = append(attrs, a3)
			}
			rels[i] = schema.RelScheme{Name: fmt.Sprintf("r%d", i), Attrs: attrs}
		}
		s := schema.MustNew(rels...)
		b.Run(fmt.Sprintf("attrs=%d", nAttrs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.Acyclify()
			}
		})
	}
}

// BenchmarkConsistency covers E-CONS: the pairwise-consistency fixpoint vs
// a Yannakakis full reduction on the same chain database.
func BenchmarkConsistency(b *testing.B) {
	r := rand.New(rand.NewSource(29))
	k := 4
	rels := make([]*relational.Relation, k)
	parent := make([]int, k)
	for i := 0; i < k; i++ {
		rels[i] = relational.NewRelation(fmt.Sprintf("r%d", i),
			fmt.Sprintf("a%d", i), fmt.Sprintf("a%d", i+1))
		for j := 0; j < 40; j++ {
			rels[i].Insert(fmt.Sprint(r.Intn(6)), fmt.Sprint(r.Intn(6)))
		}
		parent[i] = i - 1
	}
	parent[0] = -1
	b.Run("PairwiseFixpoint/chain4x40", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			relational.MakePairwiseConsistent(rels)
		}
	})
	b.Run("FullReduce/chain4x40", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := relational.FullReduce(rels, parent); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOrderings compares the two Lemma 1 ordering constructions: the
// greedy edge-MCS (Theorem 4's route, used by Algorithm 1) and the
// join-tree linearization.
func BenchmarkOrderings(b *testing.B) {
	r := rand.New(rand.NewSource(31))
	h := gen.AlphaAcyclic(r, 80, 4, 3)
	b.Run("GreedyEdgeOrder/m=80", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.GreedyEdgeOrder()
		}
	})
	b.Run("JoinTreeRIP/m=80", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := h.RunningIntersectionOrder(); !ok {
				b.Fatal("not acyclic")
			}
		}
	})
}

// BenchmarkRankedCovers measures the interpretation enumeration at schema
// scale (it is exponential by design; the bench documents the envelope).
func BenchmarkRankedCovers(b *testing.B) {
	r := rand.New(rand.NewSource(37))
	bg := gen.RandomConnectedBipartite(r, 5, 5, 0.35)
	g := bg.G()
	terms := []int{0, g.N() - 1}
	b.Run("n=10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			steiner.RankedCovers(context.Background(), g, terms, g.N(), 5)
		}
	})
}

// BenchmarkFreeze measures the one-off compilation cost of the CSR view —
// the price paid once per scheme under the classify-once/query-many
// contract.
func BenchmarkFreeze(b *testing.B) {
	for _, m := range []int{20, 80} {
		r := rand.New(rand.NewSource(int64(m)))
		h := gen.GammaAcyclic(r, m, 3, 3)
		bg := bipartite.FromHypergraph(h).B
		b.Run(fmt.Sprintf("edges=%d/V=%d", m, bg.N()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bg.Freeze()
			}
		})
	}
}

// BenchmarkClassifyMutableVsFrozen compares the seed classification path
// against the compiled one (freeze cost excluded: the scheme is compiled
// once and classified on the frozen view).
func BenchmarkClassifyMutableVsFrozen(b *testing.B) {
	for _, size := range []int{16, 32} {
		r := rand.New(rand.NewSource(int64(size)))
		g := gen.RandomBipartite(r, size, size, 0.25)
		fg := g.Freeze()
		b.Run(fmt.Sprintf("Mutable/n=%d", 2*size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				chordality.Classify(g)
			}
		})
		b.Run(fmt.Sprintf("Frozen/n=%d", 2*size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				chordality.ClassifyFrozen(fg)
			}
		})
	}
}

// BenchmarkSteinerMutableVsFrozen compares the per-query solver cost on the
// two paths over one pre-compiled scheme.
func BenchmarkSteinerMutableVsFrozen(b *testing.B) {
	for _, m := range []int{40, 160} {
		r := rand.New(rand.NewSource(int64(m)))
		h := gen.GammaAcyclic(r, m, 3, 3)
		bg := bipartite.FromHypergraph(h).B
		g := bg.G()
		fb := bg.Freeze()
		terms := largestComponentEnds(g)
		b.Run(fmt.Sprintf("Algorithm2/Mutable/edges=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := steiner.Algorithm2(g, terms); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Algorithm2/Frozen/edges=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := steiner.Algorithm2Frozen(context.Background(), fb.G(), terms); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, m := range []int{40, 160} {
		r := rand.New(rand.NewSource(int64(m)))
		h := gen.AlphaAcyclic(r, m, 4, 3)
		bg := bipartite.FromHypergraph(h).B
		fb := bg.Freeze()
		terms := largestComponentEnds(bg.G())
		b.Run(fmt.Sprintf("Algorithm1/Mutable/edges=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := steiner.Algorithm1(bg, terms); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Algorithm1/Frozen/edges=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := steiner.Algorithm1Frozen(context.Background(), fb, terms); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// serviceWorkload builds a query mix with the paper's interactive shape:
// a modest set of distinct terminal sets, each asked many times. Terminals
// come from the largest component so every query runs a real solve.
func serviceWorkload(r *rand.Rand, g *graph.Graph, distinct, total int) [][]int {
	var comp []int
	for _, c := range g.Components() {
		if len(c) > len(comp) {
			comp = c
		}
	}
	base := make([][]int, distinct)
	for i := range base {
		pick := r.Perm(len(comp))[:3] // distinct: v2 rejects duplicate terminals
		base[i] = []int{comp[pick[0]], comp[pick[1]], comp[pick[2]]}
	}
	out := make([][]int, total)
	for i := range out {
		out[i] = base[r.Intn(distinct)]
	}
	return out
}

// BenchmarkServiceThroughput compares answering a repeated-query workload
// sequentially on a bare Connector (the seed serving story: every query
// from scratch) against the Service path (bounded worker pool + LRU answer
// cache over the frozen scheme).
func BenchmarkServiceThroughput(b *testing.B) {
	r := rand.New(rand.NewSource(97))
	h := gen.GammaAcyclic(r, 60, 3, 3)
	bg := bipartite.FromHypergraph(h).B
	conn := core.New(bg)
	queries := serviceWorkload(r, bg.G(), 16, 256)
	b.Run("SequentialUncached/q=256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				conn.Connect(context.Background(), q) // errors included in the workload
			}
		}
	})
	b.Run("BatchedCached/q=256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			svc := core.NewService(conn) // fresh cache each round
			svc.ConnectBatch(context.Background(), queries)
		}
	})
	b.Run("BatchedWarmCache/q=256", func(b *testing.B) {
		svc := core.NewService(conn)
		svc.ConnectBatch(context.Background(), queries)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			svc.ConnectBatch(context.Background(), queries)
		}
	})
}
