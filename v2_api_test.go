package chordal_test

import (
	"context"
	"errors"
	"testing"
	"time"

	chordal "repro"
)

// libraryScheme builds the doc-comment example scheme.
func libraryScheme() (*chordal.Bipartite, map[string]int) {
	b := chordal.NewBipartite()
	ids := map[string]int{}
	for _, a := range []string{"reader", "book", "author"} {
		ids[a] = b.AddV1(a)
	}
	for name, over := range map[string][]string{
		"borrows": {"reader", "book"},
		"wrote":   {"author", "book"},
	} {
		ids[name] = b.AddV2(name)
		for _, a := range over {
			b.AddEdge(ids[a], ids[name])
		}
	}
	return b, ids
}

// TestFacadeOpenV2 exercises the v2 entry point end to end: Open with
// construction options, ctx-first Connect with per-query options, typed
// error re-exports, and batch serving.
func TestFacadeOpenV2(t *testing.T) {
	ctx := context.Background()
	b, ids := libraryScheme()
	svc := chordal.Open(b, chordal.WithWorkers(2), chordal.WithCacheSize(16))

	answer, err := svc.Connect(ctx, []int{ids["reader"], ids["author"]},
		chordal.WithInterpretations(b.N(), 3))
	if err != nil {
		t.Fatal(err)
	}
	if !answer.Tree.Nodes.Contains(ids["book"]) {
		t.Errorf("connection should route through book: %v", answer.Tree.Nodes)
	}
	if len(answer.Interps) == 0 {
		t.Error("WithInterpretations returned none")
	}

	// Typed errors are errors.Is-testable through the facade.
	if _, err := svc.Connect(ctx, nil); !errors.Is(err, chordal.ErrEmptyQuery) {
		t.Errorf("empty query: %v", err)
	}
	if _, err := svc.Connect(ctx, []int{ids["reader"], ids["reader"]}); !errors.Is(err, chordal.ErrInvalidTerminal) {
		t.Errorf("duplicate terminal: %v", err)
	}
	if _, err := svc.Connect(ctx, []int{b.N() + 5}); !errors.Is(err, chordal.ErrInvalidTerminal) {
		t.Errorf("out-of-range terminal: %v", err)
	}

	expired, cancel := context.WithDeadline(ctx, time.Now().Add(-time.Minute))
	defer cancel()
	if _, err := svc.Connect(expired, []int{ids["reader"], ids["book"]}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired deadline: %v", err)
	}

	results := svc.ConnectBatch(ctx, [][]int{
		{ids["reader"], ids["book"]},
		{ids["author"], ids["book"]},
	})
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("batch query %d: %v", i, r.Err)
		}
	}
}

// TestFacadeConstructionOptions covers WithMaxTerminals and
// WithV1TerminalsOnly at Open time.
func TestFacadeConstructionOptions(t *testing.T) {
	ctx := context.Background()
	b, ids := libraryScheme()
	svc := chordal.Open(b, chordal.WithMaxTerminals(2), chordal.WithV1TerminalsOnly())

	if _, err := svc.Connect(ctx, []int{ids["reader"], ids["book"], ids["author"]}); !errors.Is(err, chordal.ErrTooManyTerminals) {
		t.Errorf("terminal budget: %v", err)
	}
	if _, err := svc.Connect(ctx, []int{ids["reader"], ids["borrows"]}); !errors.Is(err, chordal.ErrInvalidTerminal) {
		t.Errorf("V2 terminal under WithV1TerminalsOnly: %v", err)
	}
	if _, err := svc.Connect(ctx, []int{ids["reader"], ids["author"]}); err != nil {
		t.Errorf("valid V1 query rejected: %v", err)
	}
}

// TestFacadeRegistry drives the multi-tenant catalog through the facade.
func TestFacadeRegistry(t *testing.T) {
	ctx := context.Background()
	b1, ids := libraryScheme()
	reg := chordal.NewRegistry()
	reg.Set("library", b1)

	conn, err := reg.Connect(ctx, "library", []int{ids["reader"], ids["author"]})
	if err != nil {
		t.Fatal(err)
	}
	if conn.Tree.Nodes.Len() == 0 {
		t.Fatal("empty connection")
	}
	if _, err := reg.Connect(ctx, "payroll", []int{0}); !errors.Is(err, chordal.ErrUnknownScheme) {
		t.Errorf("unknown scheme: %v", err)
	}

	// Swap in a new epoch; the name now answers on it.
	b2, ids2 := libraryScheme()
	shelf := b2.AddV2("shelf")
	b2.AddEdge(ids2["book"], shelf)
	reg.Set("library", b2)
	if got := reg.Epoch("library"); got != 2 {
		t.Fatalf("epoch = %d after swap", got)
	}
	if _, err := reg.Connect(ctx, "library", []int{ids2["book"], shelf}); err != nil {
		t.Errorf("query on swapped-in epoch: %v", err)
	}
}

// TestFacadeForcedMethod pins WithMethod through the facade: forcing the
// heuristic on a scheme the dispatcher would answer exactly.
func TestFacadeForcedMethod(t *testing.T) {
	ctx := context.Background()
	b, ids := libraryScheme()
	svc := chordal.Open(b)
	forced, err := svc.Connect(ctx, []int{ids["reader"], ids["author"]},
		chordal.WithMethod(chordal.MethodHeuristic))
	if err != nil {
		t.Fatal(err)
	}
	if forced.Method != chordal.MethodHeuristic {
		t.Errorf("method = %v, want heuristic", forced.Method)
	}
	if forced.Optimal {
		t.Error("forced heuristic must not claim optimality")
	}
}

// TestFacadeCacheShards pins WithCacheShards through the facade: the
// shard count and effective capacity land in CacheStats, per-shard
// occupancy reconciles with the entry count, and answers are unchanged.
func TestFacadeCacheShards(t *testing.T) {
	ctx := context.Background()
	b, ids := libraryScheme()
	svc := chordal.Open(b, chordal.WithCacheShards(4), chordal.WithCacheSize(10))

	want, err := chordal.Open(b, chordal.WithCacheShards(1)).Connect(ctx, []int{ids["reader"], ids["author"]})
	if err != nil {
		t.Fatal(err)
	}
	got, err := svc.Connect(ctx, []int{ids["reader"], ids["author"]})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Tree.Nodes.Equal(want.Tree.Nodes) || got.Method != want.Method {
		t.Errorf("sharded answer differs: %+v vs %+v", got, want)
	}
	if _, err := svc.Connect(ctx, []int{ids["author"], ids["reader"]}); err != nil {
		t.Fatal(err) // canonicalized: a cache hit
	}

	st := svc.Stats()
	if st.Shards != 4 {
		t.Errorf("shards = %d, want 4", st.Shards)
	}
	// Capacity 10 over 4 shards rounds up: ceil(10/4)=3 per shard, 12
	// effective — never silently down.
	if st.Capacity != 12 {
		t.Errorf("capacity = %d, want 12 (10 rounded up across 4 shards)", st.Capacity)
	}
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("cache accounting through the facade off: %+v", st)
	}
	sum := 0
	for _, n := range st.ShardEntries {
		sum += n
	}
	if sum != st.Entries || len(st.ShardEntries) != st.Shards {
		t.Errorf("per-shard occupancy inconsistent: %+v", st)
	}
}
